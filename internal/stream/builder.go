package stream

import (
	"fmt"
	"time"

	"tencentrec/internal/obsv"
)

// SpoutFactory creates fresh spout instances. The engine calls it once per
// task at startup and again whenever the supervisor restarts the task, so
// instances must not share mutable state through the factory's closure
// unless that state is itself safe to share.
type SpoutFactory func() Spout

// BoltFactory creates fresh bolt instances; see SpoutFactory.
type BoltFactory func() Bolt

// subscription is one inbound edge of a bolt.
type subscription struct {
	source string // upstream component name
	stream string // upstream stream id
	group  Grouping
}

// spoutDecl is a spout registered with a builder.
type spoutDecl struct {
	name        string
	factory     SpoutFactory
	parallelism int
	outputs     map[string]Fields
}

// boltDecl is a bolt registered with a builder.
type boltDecl struct {
	name        string
	factory     BoltFactory
	parallelism int
	outputs     map[string]Fields
	inputs      []subscription
	tick        time.Duration
}

// BoltDeclarer configures the subscriptions of a bolt being registered,
// in the style of Storm's fluent topology builder.
type BoltDeclarer struct {
	b   *boltDecl
	tb  *TopologyBuilder
	err error
}

// Shuffle subscribes the bolt to the source's default stream with shuffle
// grouping.
func (d *BoltDeclarer) Shuffle(source string) *BoltDeclarer {
	return d.add(source, DefaultStream, Grouping{Kind: ShuffleGrouping})
}

// ShuffleOn subscribes to a named stream with shuffle grouping.
func (d *BoltDeclarer) ShuffleOn(source, stream string) *BoltDeclarer {
	return d.add(source, stream, Grouping{Kind: ShuffleGrouping})
}

// Fields subscribes to the source's default stream with fields grouping on
// the given key fields.
func (d *BoltDeclarer) Fields(source string, fields ...string) *BoltDeclarer {
	return d.add(source, DefaultStream, Grouping{Kind: FieldsGrouping, Fields: fields})
}

// FieldsOn subscribes to a named stream with fields grouping.
func (d *BoltDeclarer) FieldsOn(source, stream string, fields ...string) *BoltDeclarer {
	return d.add(source, stream, Grouping{Kind: FieldsGrouping, Fields: fields})
}

// Global subscribes to the source's default stream with global grouping.
func (d *BoltDeclarer) Global(source string) *BoltDeclarer {
	return d.add(source, DefaultStream, Grouping{Kind: GlobalGrouping})
}

// All subscribes to the source's default stream with all grouping.
func (d *BoltDeclarer) All(source string) *BoltDeclarer {
	return d.add(source, DefaultStream, Grouping{Kind: AllGrouping})
}

// On subscribes with an explicit grouping and stream, for config-driven
// topology construction (the XML loader of §5.1).
func (d *BoltDeclarer) On(source, stream string, g Grouping) *BoltDeclarer {
	return d.add(source, stream, g)
}

// Tick requests engine-generated tick tuples on TickStream at the given
// interval, driving periodic work such as combiner flushes (§5.3).
func (d *BoltDeclarer) Tick(interval time.Duration) *BoltDeclarer {
	d.b.tick = interval
	return d
}

func (d *BoltDeclarer) add(source, stream string, g Grouping) *BoltDeclarer {
	d.b.inputs = append(d.b.inputs, subscription{source: source, stream: stream, group: g})
	return d
}

// TopologyBuilder assembles a Topology from spouts, bolts and groupings.
// It mirrors Storm's TopologyBuilder; a built topology is what the paper
// "submits to Storm for real-time computation" (§5.1).
type TopologyBuilder struct {
	name       string
	spouts     []*spoutDecl
	bolts      []*boltDecl
	config     map[string]interface{}
	maxBatch   int
	linger     time.Duration
	acking     bool
	ackTimeout time.Duration
	ackForward AckForwarder
	queueDepth int
	ackerDepth int
	bpHigh     int
	bpLow      int
	overflow   string
	registry   *obsv.Registry
	tracer     *obsv.Tracer
	errs       []error
}

// NewTopologyBuilder returns an empty builder for a topology with the
// given name.
func NewTopologyBuilder(name string) *TopologyBuilder {
	return &TopologyBuilder{name: name, config: make(map[string]interface{})}
}

// SetConfig stores a topology-level configuration value visible to all
// components through TopologyContext.Config.
func (tb *TopologyBuilder) SetConfig(key string, value interface{}) *TopologyBuilder {
	tb.config[key] = value
	return tb
}

// SetMaxBatch overrides the transport's per-destination flush threshold
// (DefaultMaxBatch). Smaller batches trade throughput for latency; 1
// reproduces the old tuple-at-a-time hand-off.
func (tb *TopologyBuilder) SetMaxBatch(n int) *TopologyBuilder {
	tb.maxBatch = n
	return tb
}

// SetLinger overrides the spout-side flush deadline (DefaultLinger) for
// buffers below the batch threshold.
func (tb *TopologyBuilder) SetLinger(d time.Duration) *TopologyBuilder {
	tb.linger = d
	return tb
}

// SetAcking enables Storm-style at-least-once delivery: anchored spout
// emissions are tracked by an XOR-lineage acker and acknowledged or
// failed back to the spout (see ack.go). Off by default; with acking off
// the transport's shared-tuple fast path is unchanged.
func (tb *TopologyBuilder) SetAcking(on bool) *TopologyBuilder {
	tb.acking = on
	return tb
}

// SetAckTimeout overrides the per-root ack timeout (DefaultAckTimeout)
// after which an incomplete lineage is failed back to its spout.
func (tb *TopologyBuilder) SetAckTimeout(d time.Duration) *TopologyBuilder {
	tb.ackTimeout = d
	return tb
}

// SetQueueDepth overrides every task's input-channel capacity, in
// batches (DefaultQueueDepth). Deeper queues absorb larger bursts before
// backpressure reaches the spouts; shallower queues bound memory and
// latency harder. Depth must be >= 1.
func (tb *TopologyBuilder) SetQueueDepth(depth int) *TopologyBuilder {
	if depth < 1 {
		tb.errs = append(tb.errs, fmt.Errorf("stream: SetQueueDepth: depth must be >= 1, got %d", depth))
		return tb
	}
	tb.queueDepth = depth
	return tb
}

// SetAckerQueueDepth overrides the acker's input-channel capacity, in
// message slices (DefaultAckerQueueDepth). Depth must be >= 1.
func (tb *TopologyBuilder) SetAckerQueueDepth(depth int) *TopologyBuilder {
	if depth < 1 {
		tb.errs = append(tb.errs, fmt.Errorf("stream: SetAckerQueueDepth: depth must be >= 1, got %d", depth))
		return tb
	}
	tb.ackerDepth = depth
	return tb
}

// SetBackpressure enables the credit-based spout throttle: when the
// aggregate bolt queue depth (in batches, disk-ring backlog included)
// crosses high, spouts stop polling for input; they resume once it
// drains to low. Requires 0 < low < high. Off by default — without it
// full queues exert blocking backpressure at the emitter, as before.
func (tb *TopologyBuilder) SetBackpressure(high, low int) *TopologyBuilder {
	if high < 1 || low < 1 || low >= high {
		tb.errs = append(tb.errs, fmt.Errorf("stream: SetBackpressure: need 0 < low < high, got high=%d low=%d", high, low))
		return tb
	}
	tb.bpHigh = high
	tb.bpLow = low
	return tb
}

// SetOverflow enables the disk-backed overflow ring under dir: a spout
// emission whose destination queue is full spills to a segment log on
// disk instead of blocking, and a drainer replays spilled batches in
// FIFO order as the queues free up. Bursts beyond the high-water mark
// therefore cost disk, not memory or spout stalls. The ring is cleared
// on startup — it is burst absorption, not a durability log (spilled
// tuples are still counted in-flight, so acking and drain semantics are
// unchanged).
func (tb *TopologyBuilder) SetOverflow(dir string) *TopologyBuilder {
	if dir == "" {
		tb.errs = append(tb.errs, fmt.Errorf("stream: SetOverflow: dir must be non-empty"))
		return tb
	}
	tb.overflow = dir
	return tb
}

// SetMetricsRegistry binds the topology's runtime metrics (per-component
// counters, execute-latency histograms, per-task queue-depth gauges) to
// an obsv Registry for Prometheus/JSON exposition. All bindings are
// exposition-time callbacks, so exposition adds no hot-path cost.
func (tb *TopologyBuilder) SetMetricsRegistry(r *obsv.Registry) *TopologyBuilder {
	tb.registry = r
	return tb
}

// SetTracer enables sampled tuple tracing: spout emissions are sampled
// at the tracer's rate, and every bolt that executes a tuple of a
// sampled lineage records a span (queue wait + execute time) into the
// trace. Unsampled emissions pay one atomic increment at the spout and
// a nil check per executed tuple.
func (tb *TopologyBuilder) SetTracer(tr *obsv.Tracer) *TopologyBuilder {
	tb.tracer = tr
	return tb
}

// SetSpout registers a spout with the given parallelism.
func (tb *TopologyBuilder) SetSpout(name string, factory SpoutFactory, parallelism int) *TopologyBuilder {
	if parallelism < 1 {
		parallelism = 1
	}
	if tb.lookup(name) {
		tb.errs = append(tb.errs, fmt.Errorf("stream: duplicate component name %q", name))
		return tb
	}
	d := &spoutDecl{name: name, factory: factory, parallelism: parallelism}
	if od, ok := factory().(OutputDeclarer); ok {
		d.outputs = od.DeclareOutputFields()
	}
	tb.spouts = append(tb.spouts, d)
	return tb
}

// SetSpoutOutputs overrides the declared outputs of a registered spout,
// for spouts whose fields are configuration-driven rather than intrinsic.
func (tb *TopologyBuilder) SetSpoutOutputs(name string, outputs map[string]Fields) *TopologyBuilder {
	for _, s := range tb.spouts {
		if s.name == name {
			s.outputs = outputs
			return tb
		}
	}
	tb.errs = append(tb.errs, fmt.Errorf("stream: SetSpoutOutputs: unknown spout %q", name))
	return tb
}

// SetBolt registers a bolt with the given parallelism and returns a
// declarer for its subscriptions.
func (tb *TopologyBuilder) SetBolt(name string, factory BoltFactory, parallelism int) *BoltDeclarer {
	if parallelism < 1 {
		parallelism = 1
	}
	d := &boltDecl{name: name, factory: factory, parallelism: parallelism}
	if tb.lookup(name) {
		tb.errs = append(tb.errs, fmt.Errorf("stream: duplicate component name %q", name))
	} else {
		if od, ok := factory().(OutputDeclarer); ok {
			d.outputs = od.DeclareOutputFields()
		}
		tb.bolts = append(tb.bolts, d)
	}
	return &BoltDeclarer{b: d, tb: tb}
}

func (tb *TopologyBuilder) lookup(name string) bool {
	for _, s := range tb.spouts {
		if s.name == name {
			return true
		}
	}
	for _, b := range tb.bolts {
		if b.name == name {
			return true
		}
	}
	return false
}

// Build validates the wiring and returns a runnable Topology.
//
// Validation checks that every subscription references an existing
// component and a stream that component declares, and that fields-grouping
// keys exist in the subscribed stream's fields.
func (tb *TopologyBuilder) Build() (*Topology, error) {
	if len(tb.errs) > 0 {
		return nil, tb.errs[0]
	}
	if len(tb.spouts) == 0 {
		return nil, fmt.Errorf("stream: topology %q has no spouts", tb.name)
	}
	outputs := make(map[string]map[string]Fields)
	for _, s := range tb.spouts {
		outputs[s.name] = s.outputs
	}
	for _, b := range tb.bolts {
		outputs[b.name] = b.outputs
	}
	for _, b := range tb.bolts {
		if len(b.inputs) == 0 {
			return nil, fmt.Errorf("stream: bolt %q has no inputs", b.name)
		}
		for _, in := range b.inputs {
			src, ok := outputs[in.source]
			if !ok {
				return nil, fmt.Errorf("stream: bolt %q subscribes to unknown component %q", b.name, in.source)
			}
			fields, ok := src[in.stream]
			if !ok {
				return nil, fmt.Errorf("stream: bolt %q subscribes to undeclared stream %q of %q", b.name, in.stream, in.source)
			}
			if in.group.Kind == FieldsGrouping {
				for _, f := range in.group.Fields {
					if fields.index(f) < 0 {
						return nil, fmt.Errorf("stream: bolt %q groups on field %q absent from %s/%s (fields %v)",
							b.name, f, in.source, in.stream, fields)
					}
				}
			}
		}
	}
	t := &Topology{
		Name:       tb.name,
		spouts:     tb.spouts,
		bolts:      tb.bolts,
		config:     tb.config,
		maxBatch:   tb.maxBatch,
		linger:     tb.linger,
		acking:     tb.acking,
		ackTimeout: tb.ackTimeout,
		ackForward: tb.ackForward,
		queueDepth: tb.queueDepth,
		ackerDepth: tb.ackerDepth,
		bpHigh:     tb.bpHigh,
		bpLow:      tb.bpLow,
		overflow:   tb.overflow,
		registry:   tb.registry,
		tracer:     tb.tracer,
	}
	t.order = t.topoOrder()
	return t, nil
}

// topoOrder returns bolt names in topological order (sources first).
// Cycles fall back to registration order for the strongly connected part.
func (t *Topology) topoOrder() []string {
	indeg := make(map[string]int, len(t.bolts))
	adj := make(map[string][]string)
	for _, b := range t.bolts {
		indeg[b.name] = 0
	}
	for _, b := range t.bolts {
		seen := make(map[string]bool)
		for _, in := range b.inputs {
			if _, isBolt := indeg[in.source]; isBolt && !seen[in.source] {
				adj[in.source] = append(adj[in.source], b.name)
				indeg[b.name]++
				seen[in.source] = true
			}
		}
	}
	var order []string
	var queue []string
	for _, b := range t.bolts { // registration order for determinism
		if indeg[b.name] == 0 {
			queue = append(queue, b.name)
		}
	}
	for len(queue) > 0 {
		n := queue[0]
		queue = queue[1:]
		order = append(order, n)
		for _, m := range adj[n] {
			indeg[m]--
			if indeg[m] == 0 {
				queue = append(queue, m)
			}
		}
	}
	if len(order) < len(t.bolts) { // cycle: append the rest in registration order
		inOrder := make(map[string]bool, len(order))
		for _, n := range order {
			inOrder[n] = true
		}
		for _, b := range t.bolts {
			if !inOrder[b.name] {
				order = append(order, b.name)
			}
		}
	}
	return order
}
