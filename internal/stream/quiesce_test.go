package stream

import (
	"sync/atomic"
	"testing"
	"time"
)

// tickingSpout emits integers forever (until stopped by the runtime),
// counting its emissions through a shared atomic.
type tickingSpout struct {
	c       SpoutCollector
	emitted *atomic.Int64
}

func (s *tickingSpout) Open(_ TopologyContext, c SpoutCollector) error {
	s.c = c
	return nil
}

func (s *tickingSpout) NextTuple() bool {
	s.c.Emit(Values{s.emitted.Add(1)})
	time.Sleep(20 * time.Microsecond)
	return true
}

func (s *tickingSpout) Close() {}

func (s *tickingSpout) DeclareOutputFields() map[string]Fields {
	return map[string]Fields{DefaultStream: {"n"}}
}

// TestQuiesceFreezesAndFlushesPipeline exercises the checkpoint quiesce
// primitive: inside Quiesce's callback the spouts are parked, every
// in-flight tuple is drained, and tick-buffered aggregates have been
// flushed downstream — so a sink's view equals the spouts' emissions
// exactly, and nothing moves until the callback returns. Afterwards the
// spouts resume.
func TestQuiesceFreezesAndFlushesPipeline(t *testing.T) {
	var emitted, arrived atomic.Int64

	tb := NewTopologyBuilder("quiesce")
	tb.SetSpout("spout", func() Spout { return &tickingSpout{emitted: &emitted} }, 1)
	// A combiner-shaped bolt: buffers everything, emits only on ticks.
	// The tick interval is an hour, so only Quiesce's tick-flush can push
	// the buffered values to the sink.
	tb.SetBolt("combine", func() Bolt {
		var held []Values
		return &BoltFunc{
			Fn: func(tp *Tuple, c Collector) error {
				if tp.IsTick() {
					for _, v := range held {
						c.Emit(v)
					}
					held = nil
					return nil
				}
				held = append(held, Values{tp.Value("n")})
				return nil
			},
			Output: Fields{"n"},
		}
	}, 1).Shuffle("spout").Tick(time.Hour)
	tb.SetBolt("sink", func() Bolt {
		return &BoltFunc{Fn: func(tp *Tuple, _ Collector) error {
			if !tp.IsTick() {
				arrived.Add(1)
			}
			return nil
		}}
	}, 1).Shuffle("combine")
	topo, err := tb.Build()
	if err != nil {
		t.Fatal(err)
	}
	h := topo.Submit()

	deadline := time.Now().Add(10 * time.Second)
	for emitted.Load() < 100 {
		if time.Now().After(deadline) {
			t.Fatal("spout never produced traffic")
		}
		time.Sleep(time.Millisecond)
	}

	var e0, a0 int64
	err = h.Quiesce(func() error {
		e0 = emitted.Load()
		a0 = arrived.Load()
		if a0 != e0 {
			t.Errorf("quiesced sink saw %d tuples, spout emitted %d; pipeline not flushed", a0, e0)
		}
		time.Sleep(20 * time.Millisecond)
		if e, a := emitted.Load(), arrived.Load(); e != e0 || a != a0 {
			t.Errorf("pipeline moved during quiesce: emitted %d→%d, arrived %d→%d", e0, e, a0, a)
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}

	// Spouts must resume after the callback returns.
	deadline = time.Now().Add(10 * time.Second)
	for emitted.Load() == e0 {
		if time.Now().After(deadline) {
			t.Fatal("spout did not resume after Quiesce")
		}
		time.Sleep(time.Millisecond)
	}
	h.Stop()
	h.Wait()
}
