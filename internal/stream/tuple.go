// Package stream implements a lightweight in-process distributed stream
// processing engine modelled on Apache Storm, which the TencentRec paper
// uses as its computation substrate (SIGMOD'15, §3.1 and §5.1).
//
// The engine reproduces the Storm semantics the paper's algorithms rely on:
//
//   - unbounded streams of field-named tuples produced by spouts and
//     transformed by bolts;
//   - stream groupings, in particular fields grouping, which guarantees
//     that all tuples sharing a key are processed by the same task —
//     the paper's "only a single worker node should operate over a
//     specific item pair at some point" (§4.1.3);
//   - per-component parallelism with independent tasks;
//   - stateless, restartable workers supervised by a cluster manager
//     (Nimbus/Supervisor in Storm, Supervisor here), so that all durable
//     state lives in an external store (TDStore) and a crashed task can
//     be relaunched "like nothing happened" (§3.1);
//   - tick tuples delivered at fixed intervals, which drive the combiner
//     flushes of §5.3.
//
// Workers are goroutines rather than processes, and routing is by channel
// rather than by network, but the visible semantics — partitioning,
// ordering per key, at-most-one-writer per key, restartability — match.
//
// Tuples move between tasks in micro-batches: the collector accumulates
// routed tuples into per-destination buffers and hands a whole []*Tuple
// to the destination task per channel operation, amortizing the
// synchronization cost the same way the paper's combiner amortizes store
// writes (§5.3). See DESIGN.md for the flush rules.
package stream

import (
	"fmt"
	"strconv"
	"sync"
	"sync/atomic"

	"tencentrec/internal/obsv"
)

// Values is the payload of a tuple: an ordered list of field values.
type Values []interface{}

// Fields names the positions of a tuple's values, in order.
type Fields []string

// index returns the position of the named field, or -1.
func (f Fields) index(name string) int {
	for i, n := range f {
		if n == name {
			return i
		}
	}
	return -1
}

// DefaultStream is the stream id used when a component does not name one.
const DefaultStream = "default"

// TickStream is the reserved stream id on which the engine delivers tick
// tuples to bolts configured with a tick interval.
const TickStream = "__tick"

// Tuple is a single unit of data flowing through a topology.
//
// Tuples delivered to a bolt are owned by the engine and recycled after
// Execute returns: a bolt that needs a field value beyond Execute must
// copy the value out (values obtained via Value/TryValue are safe to
// retain; the *Tuple itself and its Values slice are not).
type Tuple struct {
	// Component is the name of the component that emitted the tuple.
	Component string
	// Stream is the id of the stream the tuple was emitted on.
	Stream string
	// Values holds the tuple payload.
	Values Values

	fields Fields

	// refs counts outstanding deliveries of a pooled tuple; the task
	// that executes the last delivery returns the tuple to the pool.
	refs atomic.Int32
	// pooled marks tuples drawn from tuplePool. Tick tuples and
	// hand-built tuples are never recycled.
	pooled bool

	// root is the lineage root this delivery is anchored to, and ackID
	// its own XOR id; both are zero on unanchored tuples (see ack.go).
	root  uint64
	ackID uint64

	// trace is the sampled trace this tuple's lineage belongs to (nil on
	// the vast majority of tuples) and traceEnq the obsv.Now() timestamp
	// at which the tuple was emitted toward its destination, recorded so
	// the executing task can attribute queue wait to a span.
	trace    *obsv.Trace
	traceEnq int64
}

// NewTuple builds a standalone (unpooled) tuple, for driving a component
// directly — typically a bolt's Execute in a unit test — without running
// a topology.
func NewTuple(component, streamID string, fields Fields, values Values) *Tuple {
	return &Tuple{Component: component, Stream: streamID, Values: values, fields: fields}
}

// tuplePool is the free list behind the allocation-free emit path.
var tuplePool = sync.Pool{New: func() interface{} { return new(Tuple) }}

// getTuple draws a recycled tuple from the free list.
func getTuple(component, stream string, values Values, fields Fields) *Tuple {
	t := tuplePool.Get().(*Tuple)
	t.Component, t.Stream, t.Values, t.fields = component, stream, values, fields
	t.pooled = true
	return t
}

// release records that one delivery of the tuple has been executed and
// recycles the tuple once no deliveries remain. No-op for unpooled
// (tick, hand-built) tuples.
func (t *Tuple) release() {
	if !t.pooled {
		return
	}
	if t.refs.Add(-1) == 0 {
		t.Values = nil
		t.fields = nil
		t.root, t.ackID = 0, 0
		t.trace, t.traceEnq = nil, 0
		tuplePool.Put(t)
	}
}

// IsTick reports whether the tuple is an engine-generated tick tuple.
func (t *Tuple) IsTick() bool { return t.Stream == TickStream }

// IsFinalTick reports whether the tuple is the final flush tick the
// engine delivers during orderly shutdown, after all regular tuples have
// drained. Bolts that publish derived values may use it to recompute
// everything against fully-settled inputs.
func (t *Tuple) IsFinalTick() bool {
	return t.Stream == TickStream && len(t.Values) == 1 && t.Values[0] == "final"
}

// Value returns the value of the named field.
// It panics if the field does not exist; use TryValue to probe.
func (t *Tuple) Value(field string) interface{} {
	v, ok := t.TryValue(field)
	if !ok {
		panic(fmt.Sprintf("stream: tuple from %s/%s has no field %q (fields %v)",
			t.Component, t.Stream, field, t.fields))
	}
	return v
}

// TryValue returns the value of the named field and whether it exists.
func (t *Tuple) TryValue(field string) (interface{}, bool) {
	i := t.fields.index(field)
	if i < 0 || i >= len(t.Values) {
		return nil, false
	}
	return t.Values[i], true
}

// Str returns the value of the named field as a string.
func (t *Tuple) Str(field string) string { s, _ := t.Value(field).(string); return s }

// Fields returns the field names of the tuple.
func (t *Tuple) Fields() Fields { return t.fields }

// FNV-1a, inlined so grouping never allocates a hash.Hash.
const (
	fnvOffset64 = 14695981039346656037
	fnvPrime64  = 1099511628211
)

func fnvString(h uint64, s string) uint64 {
	for i := 0; i < len(s); i++ {
		h = (h ^ uint64(s[i])) * fnvPrime64
	}
	return h
}

func fnvBytes(h uint64, b []byte) uint64 {
	for _, c := range b {
		h = (h ^ uint64(c)) * fnvPrime64
	}
	return h
}

// hashValues computes a stable hash over the selected grouping fields,
// used by fields grouping to pick a destination task. The common scalar
// types are folded through a type switch that produces exactly the bytes
// fmt "%v" formatting would, without the reflection or the allocations.
func hashValues(t *Tuple, fields Fields) uint64 {
	h := uint64(fnvOffset64)
	for _, f := range fields {
		v, ok := t.TryValue(f)
		if !ok {
			continue
		}
		h = hashValue(h, v)
		h *= fnvPrime64 // fold the '\x00' field separator (h ^ 0 == h)
	}
	return h
}

// hashValue folds one grouping value into the running FNV-1a state.
// The scratch buffer stays on the stack, so the switch arms are
// allocation-free; only exotic value types fall back to fmt.
func hashValue(h uint64, v interface{}) uint64 {
	var scratch [32]byte
	switch x := v.(type) {
	case string:
		return fnvString(h, x)
	case int:
		return fnvBytes(h, strconv.AppendInt(scratch[:0], int64(x), 10))
	case int64:
		return fnvBytes(h, strconv.AppendInt(scratch[:0], x, 10))
	case int32:
		return fnvBytes(h, strconv.AppendInt(scratch[:0], int64(x), 10))
	case uint:
		return fnvBytes(h, strconv.AppendUint(scratch[:0], uint64(x), 10))
	case uint64:
		return fnvBytes(h, strconv.AppendUint(scratch[:0], x, 10))
	case uint32:
		return fnvBytes(h, strconv.AppendUint(scratch[:0], uint64(x), 10))
	case float64:
		return fnvBytes(h, strconv.AppendFloat(scratch[:0], x, 'g', -1, 64))
	case float32:
		return fnvBytes(h, strconv.AppendFloat(scratch[:0], float64(x), 'g', -1, 32))
	case bool:
		if x {
			return fnvString(h, "true")
		}
		return fnvString(h, "false")
	default:
		return fnvString(h, fmt.Sprintf("%v", x))
	}
}
