// Package stream implements a lightweight in-process distributed stream
// processing engine modelled on Apache Storm, which the TencentRec paper
// uses as its computation substrate (SIGMOD'15, §3.1 and §5.1).
//
// The engine reproduces the Storm semantics the paper's algorithms rely on:
//
//   - unbounded streams of field-named tuples produced by spouts and
//     transformed by bolts;
//   - stream groupings, in particular fields grouping, which guarantees
//     that all tuples sharing a key are processed by the same task —
//     the paper's "only a single worker node should operate over a
//     specific item pair at some point" (§4.1.3);
//   - per-component parallelism with independent tasks;
//   - stateless, restartable workers supervised by a cluster manager
//     (Nimbus/Supervisor in Storm, Supervisor here), so that all durable
//     state lives in an external store (TDStore) and a crashed task can
//     be relaunched "like nothing happened" (§3.1);
//   - tick tuples delivered at fixed intervals, which drive the combiner
//     flushes of §5.3.
//
// Workers are goroutines rather than processes, and routing is by channel
// rather than by network, but the visible semantics — partitioning,
// ordering per key, at-most-one-writer per key, restartability — match.
package stream

import (
	"fmt"
	"hash/fnv"
)

// Values is the payload of a tuple: an ordered list of field values.
type Values []interface{}

// Fields names the positions of a tuple's values, in order.
type Fields []string

// index returns the position of the named field, or -1.
func (f Fields) index(name string) int {
	for i, n := range f {
		if n == name {
			return i
		}
	}
	return -1
}

// DefaultStream is the stream id used when a component does not name one.
const DefaultStream = "default"

// TickStream is the reserved stream id on which the engine delivers tick
// tuples to bolts configured with a tick interval.
const TickStream = "__tick"

// Tuple is a single unit of data flowing through a topology.
type Tuple struct {
	// Component is the name of the component that emitted the tuple.
	Component string
	// Stream is the id of the stream the tuple was emitted on.
	Stream string
	// Values holds the tuple payload.
	Values Values

	fields Fields
}

// IsTick reports whether the tuple is an engine-generated tick tuple.
func (t *Tuple) IsTick() bool { return t.Stream == TickStream }

// IsFinalTick reports whether the tuple is the final flush tick the
// engine delivers during orderly shutdown, after all regular tuples have
// drained. Bolts that publish derived values may use it to recompute
// everything against fully-settled inputs.
func (t *Tuple) IsFinalTick() bool {
	return t.Stream == TickStream && len(t.Values) == 1 && t.Values[0] == "final"
}

// Value returns the value of the named field.
// It panics if the field does not exist; use TryValue to probe.
func (t *Tuple) Value(field string) interface{} {
	v, ok := t.TryValue(field)
	if !ok {
		panic(fmt.Sprintf("stream: tuple from %s/%s has no field %q (fields %v)",
			t.Component, t.Stream, field, t.fields))
	}
	return v
}

// TryValue returns the value of the named field and whether it exists.
func (t *Tuple) TryValue(field string) (interface{}, bool) {
	i := t.fields.index(field)
	if i < 0 || i >= len(t.Values) {
		return nil, false
	}
	return t.Values[i], true
}

// String returns the value of the named field as a string.
func (t *Tuple) String2(field string) string { s, _ := t.Value(field).(string); return s }

// Fields returns the field names of the tuple.
func (t *Tuple) Fields() Fields { return t.fields }

// hashValues computes a stable hash over the selected grouping fields,
// used by fields grouping to pick a destination task.
func hashValues(t *Tuple, fields Fields) uint64 {
	h := fnv.New64a()
	for _, f := range fields {
		v, ok := t.TryValue(f)
		if !ok {
			continue
		}
		fmt.Fprintf(h, "%v\x00", v)
	}
	return h.Sum64()
}
