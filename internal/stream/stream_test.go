package stream

import (
	"context"
	"fmt"
	"sync"
	"sync/atomic"
	"testing"
	"testing/quick"
	"time"
)

// rangeSpout emits the integers [0, n) as single-field tuples.
type rangeSpout struct {
	n, next int
	c       SpoutCollector
}

func (s *rangeSpout) Open(_ TopologyContext, c SpoutCollector) error {
	s.c = c
	s.next = 0
	return nil
}

func (s *rangeSpout) NextTuple() bool {
	if s.next >= s.n {
		return false
	}
	s.c.Emit(Values{s.next})
	s.next++
	return true
}

func (s *rangeSpout) Close() {}

func (s *rangeSpout) DeclareOutputFields() map[string]Fields {
	return map[string]Fields{DefaultStream: {"n"}}
}

// sinkBolt records every tuple it sees, with the executing task index.
type sinkBolt struct {
	mu   *sync.Mutex
	seen *[]seenTuple
	task int
}

type seenTuple struct {
	task  int
	value interface{}
	tick  bool
}

func (b *sinkBolt) Prepare(ctx TopologyContext, _ Collector) error {
	b.task = ctx.TaskIndex
	return nil
}

func (b *sinkBolt) Execute(t *Tuple) error {
	b.mu.Lock()
	defer b.mu.Unlock()
	if t.IsTick() {
		*b.seen = append(*b.seen, seenTuple{task: b.task, tick: true})
		return nil
	}
	*b.seen = append(*b.seen, seenTuple{task: b.task, value: t.Value("n")})
	return nil
}

func (b *sinkBolt) Cleanup() {}

func newSink() (BoltFactory, *sync.Mutex, *[]seenTuple) {
	mu := &sync.Mutex{}
	seen := &[]seenTuple{}
	return func() Bolt { return &sinkBolt{mu: mu, seen: seen} }, mu, seen
}

func TestRunDeliversAllTuples(t *testing.T) {
	sink, mu, seen := newSink()
	tb := NewTopologyBuilder("t")
	tb.SetSpout("spout", func() Spout { return &rangeSpout{n: 1000} }, 1)
	tb.SetBolt("sink", sink, 4).Shuffle("spout")
	topo, err := tb.Build()
	if err != nil {
		t.Fatal(err)
	}
	m, err := topo.Run(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	for name, c := range m.Components {
		if c.Dropped != 0 || c.Failed != 0 {
			t.Fatalf("%s: dropped=%d failed=%d on a healthy run, want 0/0", name, c.Dropped, c.Failed)
		}
	}
	mu.Lock()
	defer mu.Unlock()
	if len(*seen) != 1000 {
		t.Fatalf("got %d tuples, want 1000", len(*seen))
	}
	got := make(map[int]bool)
	for _, s := range *seen {
		got[s.value.(int)] = true
	}
	if len(got) != 1000 {
		t.Fatalf("got %d distinct values, want 1000", len(got))
	}
}

func TestFieldsGroupingRoutesKeyToOneTask(t *testing.T) {
	sink, mu, seen := newSink()
	tb := NewTopologyBuilder("t")
	tb.SetSpout("spout", func() Spout { return &rangeSpout{n: 500} }, 1)
	// key = n % 7 via an intermediate bolt
	tb.SetBolt("keyer", func() Bolt {
		return &BoltFunc{
			Fn: func(tp *Tuple, c Collector) error {
				c.Emit(Values{tp.Value("n").(int) % 7})
				return nil
			},
			Output: Fields{"n"},
		}
	}, 2).Shuffle("spout")
	tb.SetBolt("sink", sink, 5).Fields("keyer", "n")
	topo, err := tb.Build()
	if err != nil {
		t.Fatal(err)
	}
	if _, err := topo.Run(context.Background()); err != nil {
		t.Fatal(err)
	}
	mu.Lock()
	defer mu.Unlock()
	taskByKey := make(map[interface{}]int)
	for _, s := range *seen {
		if prev, ok := taskByKey[s.value]; ok && prev != s.task {
			t.Fatalf("key %v seen on tasks %d and %d", s.value, prev, s.task)
		}
		taskByKey[s.value] = s.task
	}
	if len(*seen) != 500 {
		t.Fatalf("got %d tuples, want 500", len(*seen))
	}
}

func TestGlobalGroupingUsesTaskZero(t *testing.T) {
	sink, mu, seen := newSink()
	tb := NewTopologyBuilder("t")
	tb.SetSpout("spout", func() Spout { return &rangeSpout{n: 100} }, 1)
	tb.SetBolt("sink", sink, 4).Global("spout")
	topo, err := tb.Build()
	if err != nil {
		t.Fatal(err)
	}
	if _, err := topo.Run(context.Background()); err != nil {
		t.Fatal(err)
	}
	mu.Lock()
	defer mu.Unlock()
	for _, s := range *seen {
		if s.task != 0 {
			t.Fatalf("tuple executed on task %d, want 0", s.task)
		}
	}
}

func TestAllGroupingReplicates(t *testing.T) {
	sink, mu, seen := newSink()
	tb := NewTopologyBuilder("t")
	tb.SetSpout("spout", func() Spout { return &rangeSpout{n: 100} }, 1)
	tb.SetBolt("sink", sink, 3).All("spout")
	topo, err := tb.Build()
	if err != nil {
		t.Fatal(err)
	}
	if _, err := topo.Run(context.Background()); err != nil {
		t.Fatal(err)
	}
	mu.Lock()
	defer mu.Unlock()
	if len(*seen) != 300 {
		t.Fatalf("got %d deliveries, want 300", len(*seen))
	}
}

func TestNamedStreams(t *testing.T) {
	var evens, odds atomic.Int64
	tb := NewTopologyBuilder("t")
	tb.SetSpout("spout", func() Spout { return &rangeSpout{n: 100} }, 1)
	tb.SetBolt("split", func() Bolt {
		return &splitBolt{}
	}, 1).Shuffle("spout")
	tb.SetBolt("evens", func() Bolt {
		return &BoltFunc{Fn: func(*Tuple, Collector) error { evens.Add(1); return nil }}
	}, 2).ShuffleOn("split", "even")
	tb.SetBolt("odds", func() Bolt {
		return &BoltFunc{Fn: func(*Tuple, Collector) error { odds.Add(1); return nil }}
	}, 2).ShuffleOn("split", "odd")
	topo, err := tb.Build()
	if err != nil {
		t.Fatal(err)
	}
	if _, err := topo.Run(context.Background()); err != nil {
		t.Fatal(err)
	}
	if evens.Load() != 50 || odds.Load() != 50 {
		t.Fatalf("evens=%d odds=%d, want 50/50", evens.Load(), odds.Load())
	}
}

type splitBolt struct{ c Collector }

func (b *splitBolt) Prepare(_ TopologyContext, c Collector) error { b.c = c; return nil }
func (b *splitBolt) Execute(t *Tuple) error {
	n := t.Value("n").(int)
	if n%2 == 0 {
		b.c.EmitTo("even", Values{n})
	} else {
		b.c.EmitTo("odd", Values{n})
	}
	return nil
}
func (b *splitBolt) Cleanup() {}
func (b *splitBolt) DeclareOutputFields() map[string]Fields {
	return map[string]Fields{"even": {"n"}, "odd": {"n"}}
}

func TestBuildValidation(t *testing.T) {
	cases := []struct {
		name  string
		build func() *TopologyBuilder
	}{
		{"no spouts", func() *TopologyBuilder {
			tb := NewTopologyBuilder("t")
			tb.SetBolt("b", func() Bolt { return &BoltFunc{Fn: func(*Tuple, Collector) error { return nil }} }, 1)
			return tb
		}},
		{"unknown source", func() *TopologyBuilder {
			tb := NewTopologyBuilder("t")
			tb.SetSpout("s", func() Spout { return &rangeSpout{n: 1} }, 1)
			tb.SetBolt("b", func() Bolt { return &BoltFunc{Fn: func(*Tuple, Collector) error { return nil }} }, 1).Shuffle("nope")
			return tb
		}},
		{"undeclared stream", func() *TopologyBuilder {
			tb := NewTopologyBuilder("t")
			tb.SetSpout("s", func() Spout { return &rangeSpout{n: 1} }, 1)
			tb.SetBolt("b", func() Bolt { return &BoltFunc{Fn: func(*Tuple, Collector) error { return nil }} }, 1).ShuffleOn("s", "missing")
			return tb
		}},
		{"missing grouping field", func() *TopologyBuilder {
			tb := NewTopologyBuilder("t")
			tb.SetSpout("s", func() Spout { return &rangeSpout{n: 1} }, 1)
			tb.SetBolt("b", func() Bolt { return &BoltFunc{Fn: func(*Tuple, Collector) error { return nil }} }, 1).Fields("s", "nope")
			return tb
		}},
		{"duplicate name", func() *TopologyBuilder {
			tb := NewTopologyBuilder("t")
			tb.SetSpout("s", func() Spout { return &rangeSpout{n: 1} }, 1)
			tb.SetSpout("s", func() Spout { return &rangeSpout{n: 1} }, 1)
			return tb
		}},
		{"bolt without inputs", func() *TopologyBuilder {
			tb := NewTopologyBuilder("t")
			tb.SetSpout("s", func() Spout { return &rangeSpout{n: 1} }, 1)
			tb.SetBolt("b", func() Bolt { return &BoltFunc{Fn: func(*Tuple, Collector) error { return nil }} }, 1)
			return tb
		}},
	}
	for _, c := range cases {
		t.Run(c.name, func(t *testing.T) {
			if _, err := c.build().Build(); err == nil {
				t.Fatal("Build succeeded, want error")
			}
		})
	}
}

func TestTickTuplesDelivered(t *testing.T) {
	var ticks atomic.Int64
	tb := NewTopologyBuilder("t")
	tb.SetSpout("spout", func() Spout { return &slowSpout{n: 5, delay: 20 * time.Millisecond} }, 1)
	tb.SetBolt("b", func() Bolt {
		return &BoltFunc{Fn: func(tp *Tuple, _ Collector) error {
			if tp.IsTick() {
				ticks.Add(1)
			}
			return nil
		}}
	}, 1).Shuffle("spout").Tick(5 * time.Millisecond)
	topo, err := tb.Build()
	if err != nil {
		t.Fatal(err)
	}
	if _, err := topo.Run(context.Background()); err != nil {
		t.Fatal(err)
	}
	// At least a few interval ticks plus the final flush tick.
	if ticks.Load() < 3 {
		t.Fatalf("got %d ticks, want >= 3", ticks.Load())
	}
}

type slowSpout struct {
	n, next int
	delay   time.Duration
	c       SpoutCollector
}

func (s *slowSpout) Open(_ TopologyContext, c SpoutCollector) error { s.c = c; return nil }
func (s *slowSpout) NextTuple() bool {
	if s.next >= s.n {
		return false
	}
	time.Sleep(s.delay)
	s.c.Emit(Values{s.next})
	s.next++
	return true
}
func (s *slowSpout) Close() {}
func (s *slowSpout) DeclareOutputFields() map[string]Fields {
	return map[string]Fields{DefaultStream: {"n"}}
}

func TestFinalFlushTickCascades(t *testing.T) {
	// A two-stage combiner-like chain: each stage buffers values and only
	// emits on tick. The final flush must cascade through both stages so
	// the sink still sees every value.
	sink, mu, seen := newSink()
	mkBuffer := func() Bolt { return &bufferBolt{} }
	tb := NewTopologyBuilder("t")
	tb.SetSpout("spout", func() Spout { return &rangeSpout{n: 50} }, 1)
	tb.SetBolt("stage1", mkBuffer, 1).Shuffle("spout").Tick(time.Hour)
	tb.SetBolt("stage2", mkBuffer, 1).Shuffle("stage1").Tick(time.Hour)
	tb.SetBolt("sink", sink, 1).Shuffle("stage2")
	topo, err := tb.Build()
	if err != nil {
		t.Fatal(err)
	}
	if _, err := topo.Run(context.Background()); err != nil {
		t.Fatal(err)
	}
	mu.Lock()
	defer mu.Unlock()
	var n int
	for _, s := range *seen {
		if !s.tick {
			n++
		}
	}
	if n != 50 {
		t.Fatalf("sink saw %d values, want 50 (flush did not cascade)", n)
	}
}

// bufferBolt holds tuples until a tick arrives, then re-emits them all.
type bufferBolt struct {
	c   Collector
	buf []int
}

func (b *bufferBolt) Prepare(_ TopologyContext, c Collector) error { b.c = c; return nil }
func (b *bufferBolt) Execute(t *Tuple) error {
	if t.IsTick() {
		for _, v := range b.buf {
			b.c.Emit(Values{v})
		}
		b.buf = b.buf[:0]
		return nil
	}
	b.buf = append(b.buf, t.Value("n").(int))
	return nil
}
func (b *bufferBolt) Cleanup() {}
func (b *bufferBolt) DeclareOutputFields() map[string]Fields {
	return map[string]Fields{DefaultStream: {"n"}}
}

func TestRestartTaskDiscardsState(t *testing.T) {
	// A stateful counting bolt loses its in-memory count on restart,
	// demonstrating that workers are state-free and that durable state
	// must live in the external store.
	var lastCount atomic.Int64
	tb := NewTopologyBuilder("t")
	tb.SetSpout("spout", func() Spout { return &slowSpout{n: 40, delay: time.Millisecond} }, 1)
	tb.SetBolt("count", func() Bolt {
		n := 0
		return &BoltFunc{Fn: func(tp *Tuple, _ Collector) error {
			if tp.IsTick() {
				return nil
			}
			n++
			lastCount.Store(int64(n))
			return nil
		}}
	}, 1).Shuffle("spout")
	topo, err := tb.Build()
	if err != nil {
		t.Fatal(err)
	}
	h := topo.Submit()
	time.Sleep(15 * time.Millisecond)
	if err := h.RestartTask("count", 0); err != nil {
		t.Fatal(err)
	}
	h.Wait()
	if got := h.Restarts("count", 0); got != 1 {
		t.Fatalf("restarts = %d, want 1", got)
	}
	if lastCount.Load() >= 40 {
		t.Fatalf("final in-memory count %d survived restart, want < 40", lastCount.Load())
	}
}

func TestStopDrains(t *testing.T) {
	sink, mu, seen := newSink()
	tb := NewTopologyBuilder("t")
	tb.SetSpout("spout", func() Spout { return &slowSpout{n: 1 << 30, delay: 100 * time.Microsecond} }, 1)
	tb.SetBolt("sink", sink, 2).Shuffle("spout")
	topo, err := tb.Build()
	if err != nil {
		t.Fatal(err)
	}
	h := topo.Submit()
	time.Sleep(20 * time.Millisecond)
	h.Stop()
	h.Wait()
	mu.Lock()
	n := len(*seen)
	mu.Unlock()
	if n == 0 {
		t.Fatal("no tuples processed before stop")
	}
	m := h.Metrics()
	if m.Components["sink"].Executed != int64(n) {
		t.Fatalf("metrics executed=%d, sink saw %d", m.Components["sink"].Executed, n)
	}
	if m.Components["sink"].Dropped != 0 {
		t.Fatalf("sink dropped %d tuples on an orderly stop, want 0", m.Components["sink"].Dropped)
	}
}

func TestContextCancelStops(t *testing.T) {
	ctx, cancel := context.WithTimeout(context.Background(), 30*time.Millisecond)
	defer cancel()
	tb := NewTopologyBuilder("t")
	tb.SetSpout("spout", func() Spout { return &slowSpout{n: 1 << 30, delay: 100 * time.Microsecond} }, 1)
	tb.SetBolt("sink", func() Bolt {
		return &BoltFunc{Fn: func(*Tuple, Collector) error { return nil }}
	}, 1).Shuffle("spout")
	topo, err := tb.Build()
	if err != nil {
		t.Fatal(err)
	}
	done := make(chan struct{})
	go func() {
		_, _ = topo.Run(ctx)
		close(done)
	}()
	select {
	case <-done:
	case <-time.After(5 * time.Second):
		t.Fatal("Run did not stop after context cancellation")
	}
}

func TestErrorHandlerInvoked(t *testing.T) {
	var errs atomic.Int64
	tb := NewTopologyBuilder("t")
	tb.SetSpout("spout", func() Spout { return &rangeSpout{n: 10} }, 1)
	tb.SetBolt("bad", func() Bolt {
		return &BoltFunc{Fn: func(tp *Tuple, _ Collector) error {
			if tp.IsTick() {
				return nil
			}
			return fmt.Errorf("boom %v", tp.Value("n"))
		}}
	}, 1).Shuffle("spout")
	topo, err := tb.Build()
	if err != nil {
		t.Fatal(err)
	}
	m, err := topo.RunWithErrorHandler(context.Background(), func(string, error) { errs.Add(1) })
	if err != nil {
		t.Fatal(err)
	}
	if errs.Load() != 10 {
		t.Fatalf("error handler called %d times, want 10", errs.Load())
	}
	if m.Components["bad"].Errors != 10 {
		t.Fatalf("metrics errors=%d, want 10", m.Components["bad"].Errors)
	}
}

func TestTupleFieldAccess(t *testing.T) {
	tu := &Tuple{Component: "c", Stream: DefaultStream, Values: Values{"u1", "i1", 3}, fields: Fields{"user", "item", "w"}}
	if got := tu.Value("user"); got != "u1" {
		t.Fatalf("user = %v", got)
	}
	if _, ok := tu.TryValue("absent"); ok {
		t.Fatal("TryValue(absent) reported ok")
	}
	defer func() {
		if recover() == nil {
			t.Fatal("Value(absent) did not panic")
		}
	}()
	_ = tu.Value("absent")
}

func TestFieldsGroupingDeterministicProperty(t *testing.T) {
	g := Grouping{Kind: FieldsGrouping, Fields: Fields{"k"}}
	f := func(key string, n uint8) bool {
		tasks := int(n%16) + 1
		asn := newAssignment(make([]*task, tasks))
		tu := &Tuple{Values: Values{key}, fields: Fields{"k"}}
		a := g.route(tu, asn, nil, nil)
		b := g.route(tu, asn, nil, nil)
		return len(a) == 1 && len(b) == 1 && a[0] == b[0] && a[0] < tasks
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

// TestPartitionRoutingStableAcrossScale checks the logical-partition
// property the rebalance design rests on: a key's partition never moves,
// and for task counts that divide NumPartitions the round-robin
// partition table reproduces the pre-partition hash%n routing exactly.
func TestPartitionRoutingStableAcrossScale(t *testing.T) {
	g := Grouping{Kind: FieldsGrouping, Fields: Fields{"k"}}
	for _, n := range []int{1, 2, 4, 8, 16, 32} {
		asn := newAssignment(make([]*task, n))
		for i := 0; i < 512; i++ {
			key := fmt.Sprintf("key-%d", i)
			tu := &Tuple{Values: Values{key}, fields: Fields{"k"}}
			got := g.route(tu, asn, nil, nil)[0]
			want := int(hashValues(tu, g.Fields) % uint64(n))
			if got != want {
				t.Fatalf("n=%d key=%s routed to %d, want hash%%n=%d", n, key, got, want)
			}
		}
	}
}

func TestMetricsSnapshotString(t *testing.T) {
	tb := NewTopologyBuilder("t")
	tb.SetSpout("spout", func() Spout { return &rangeSpout{n: 10} }, 1)
	tb.SetBolt("sink", func() Bolt {
		return &BoltFunc{Fn: func(*Tuple, Collector) error { return nil }}
	}, 1).Shuffle("spout")
	topo, _ := tb.Build()
	m, _ := topo.Run(context.Background())
	s := m.String()
	if s == "" || !contains(s, "spout") || !contains(s, "sink") {
		t.Fatalf("snapshot string missing components: %q", s)
	}
	if !contains(s, "ticks-skip") {
		t.Fatalf("snapshot string missing ticks-skip column: %q", s)
	}
}

func contains(s, sub string) bool {
	return len(s) >= len(sub) && (s == sub || len(sub) == 0 || indexOf(s, sub) >= 0)
}

func indexOf(s, sub string) int {
	for i := 0; i+len(sub) <= len(s); i++ {
		if s[i:i+len(sub)] == sub {
			return i
		}
	}
	return -1
}

func TestDiamondTopologyFlushOrder(t *testing.T) {
	// Diamond: spout -> a -> (b, c) -> d. Topological flush order must
	// place a before b/c and b/c before d, so cascaded combiner flushes
	// deliver everything.
	mkBuffer := func() Bolt { return &bufferBolt{} }
	sink, mu, seen := newSink()
	tb := NewTopologyBuilder("diamond")
	tb.SetSpout("spout", func() Spout { return &rangeSpout{n: 30} }, 1)
	tb.SetBolt("a", mkBuffer, 1).Shuffle("spout").Tick(time.Hour)
	tb.SetBolt("b", mkBuffer, 1).Shuffle("a").Tick(time.Hour)
	tb.SetBolt("c", mkBuffer, 1).Shuffle("a").Tick(time.Hour)
	tb.SetBolt("d", sink, 1).Shuffle("b").Shuffle("c")
	topo, err := tb.Build()
	if err != nil {
		t.Fatal(err)
	}
	if _, err := topo.Run(context.Background()); err != nil {
		t.Fatal(err)
	}
	mu.Lock()
	defer mu.Unlock()
	n := 0
	for _, s := range *seen {
		if !s.tick {
			n++
		}
	}
	// Every value reaches d twice (via b and via c).
	if n != 60 {
		t.Fatalf("diamond sink saw %d values, want 60", n)
	}
}

func TestParallelismAccessors(t *testing.T) {
	tb := NewTopologyBuilder("t")
	tb.SetSpout("s", func() Spout { return &rangeSpout{n: 1} }, 3)
	tb.SetBolt("b", func() Bolt {
		return &BoltFunc{Fn: func(*Tuple, Collector) error { return nil }}
	}, 5).Shuffle("s")
	topo, err := tb.Build()
	if err != nil {
		t.Fatal(err)
	}
	if topo.Parallelism("s") != 3 || topo.Parallelism("b") != 5 || topo.Parallelism("nope") != 0 {
		t.Fatal("Parallelism accessor wrong")
	}
	comps := topo.Components()
	if len(comps) != 2 || comps[0] != "s" {
		t.Fatalf("Components = %v", comps)
	}
}
