package stream

import (
	"sync"
	"sync/atomic"
	"testing"
	"time"
)

// The relay tests exercise the cross-runtime lineage seam (relay.go) the
// way internal/cluster uses it, but with channels in place of TCP: an
// upstream topology (real acker, anchoring spout, egress proxy bolt)
// feeds a downstream topology (ingress proxy spout, sink bolt, acker in
// forward mode) whose lineage updates are injected back upstream.

// wireTuple is a tuple crossing the fake wire.
type wireTuple struct {
	root, id uint64
	vals     Values
}

// relaySource is the upstream acking spout: emits n anchored messages,
// replays failures, and exhausts once every message has been acked.
type relaySource struct {
	n       int
	col     SpoutCollector
	pending []int
	acked   map[int]bool
	next    int
	fails   atomic.Int64
}

func (s *relaySource) Open(_ TopologyContext, c SpoutCollector) error {
	s.col = c
	s.acked = make(map[int]bool)
	return nil
}

func (s *relaySource) NextTuple() bool {
	if len(s.pending) > 0 {
		id := s.pending[0]
		s.pending = s.pending[1:]
		s.col.EmitAnchored(id, Values{id})
		return true
	}
	if s.next < s.n {
		s.col.EmitAnchored(s.next, Values{s.next})
		s.next++
		return true
	}
	return len(s.acked) < s.n // exhaust once everything acked
}

func (s *relaySource) Ack(msgID interface{}) { s.acked[msgID.(int)] = true }
func (s *relaySource) Fail(msgID interface{}) {
	s.fails.Add(1)
	s.pending = append(s.pending, msgID.(int))
}
func (s *relaySource) Close() {}
func (s *relaySource) DeclareOutputFields() map[string]Fields {
	return map[string]Fields{DefaultStream: {"v"}}
}

// relayEgress forwards every tuple across the fake wire under a remote
// anchor; dropNth > 0 drops each value's first attempt when v%dropNth==0,
// AFTER anchoring — simulating a frame lost to a dead peer.
type relayEgress struct {
	wire    chan<- wireTuple
	dropNth int
	col     Collector
	seen    map[int]bool
}

func (b *relayEgress) Prepare(_ TopologyContext, c Collector) error {
	b.col = c
	b.seen = make(map[int]bool)
	return nil
}

func (b *relayEgress) Execute(t *Tuple) error {
	v := t.Value("v").(int)
	root, id := b.col.(RemoteAnchorer).AnchorRemote()
	if b.dropNth > 0 && v%b.dropNth == 0 && !b.seen[v] {
		b.seen[v] = true
		return nil // anchored but never sent: root must time out and replay
	}
	b.wire <- wireTuple{root: root, id: id, vals: Values{v}}
	return nil
}

func (b *relayEgress) Cleanup() {}

// relayIngress is the downstream proxy spout: re-emits wire tuples under
// their inherited lineage.
type relayIngress struct {
	wire <-chan wireTuple
	col  SpoutCollector
}

func (s *relayIngress) Open(_ TopologyContext, c SpoutCollector) error {
	s.col = c
	return nil
}

func (s *relayIngress) NextTuple() bool {
	select {
	case wt := <-s.wire:
		s.col.(RelayCollector).EmitRelayed(DefaultStream, wt.vals, wt.root, wt.id)
	case <-time.After(time.Millisecond):
	}
	return true
}

func (s *relayIngress) Close() {}
func (s *relayIngress) DeclareOutputFields() map[string]Fields {
	return map[string]Fields{DefaultStream: {"v"}}
}

// relaySink records distinct values and total deliveries.
type relaySink struct {
	mu       sync.Mutex
	distinct map[int]int
	total    int
}

func (b *relaySink) Prepare(TopologyContext, Collector) error { return nil }
func (b *relaySink) Execute(t *Tuple) error {
	v := t.Value("v").(int)
	b.mu.Lock()
	if b.distinct == nil {
		b.distinct = make(map[int]int)
	}
	b.distinct[v]++
	b.total++
	b.mu.Unlock()
	return nil
}
func (b *relaySink) Cleanup() {}

// runRelayPair runs the two-runtime pair to completion and returns the
// spout, the sink, and the downstream handle's InjectAcks error (if any).
func runRelayPair(t *testing.T, n, dropNth int) (*relaySource, *relaySink) {
	t.Helper()
	wire := make(chan wireTuple, 1024)

	src := &relaySource{n: n}
	egress := &relayEgress{wire: wire, dropNth: dropNth}

	upB := NewTopologyBuilder("relay-up")
	upB.SetAcking(true).SetAckTimeout(250 * time.Millisecond).SetLinger(100 * time.Microsecond)
	upB.SetSpout("src", func() Spout { return src }, 1)
	upB.SetBolt("egress", func() Bolt { return egress }, 1).Shuffle("src")
	upT, err := upB.Build()
	if err != nil {
		t.Fatalf("build upstream: %v", err)
	}
	upH := upT.Submit()

	// Downstream runtime forwards its lineage updates back upstream.
	sink := &relaySink{}
	downB := NewTopologyBuilder("relay-down")
	downB.SetAcking(true).SetLinger(100 * time.Microsecond)
	downB.SetAckForwarder(func(updates []AckUpdate) {
		if err := upH.InjectAcks(updates); err != nil {
			t.Logf("InjectAcks after shutdown: %v", err)
		}
	})
	downB.SetSpout("ingress", func() Spout { return &relayIngress{wire: wire} }, 1)
	downB.SetBolt("sink", func() Bolt { return sink }, 2).Fields("ingress", "v")
	downT, err := downB.Build()
	if err != nil {
		t.Fatalf("build downstream: %v", err)
	}
	downH := downT.Submit()

	waitDone := make(chan struct{})
	go func() { upH.Wait(); close(waitDone) }()
	select {
	case <-waitDone:
	case <-time.After(30 * time.Second):
		t.Fatalf("upstream did not complete: acked=%d/%d fails=%d",
			len(src.acked), n, src.fails.Load())
	}
	downH.Stop()
	return src, sink
}

// TestRelayLineageCompletes proves the XOR accounting telescopes across
// the runtime boundary: every anchored message is acked exactly when its
// downstream execution finished, with zero failures on a clean wire.
func TestRelayLineageCompletes(t *testing.T) {
	const n = 500
	src, sink := runRelayPair(t, n, 0)
	if len(src.acked) != n {
		t.Fatalf("acked %d of %d messages", len(src.acked), n)
	}
	if f := src.fails.Load(); f != 0 {
		t.Fatalf("expected no failures on a clean wire, got %d", f)
	}
	sink.mu.Lock()
	defer sink.mu.Unlock()
	if len(sink.distinct) != n || sink.total != n {
		t.Fatalf("sink saw %d distinct / %d total, want %d/%d", len(sink.distinct), sink.total, n, n)
	}
}

// TestRelayReplayAfterWireLoss drops each 7th value's first crossing
// after it was remote-anchored — the lineage never completes, the root
// times out, the spout replays — and checks every value still arrives.
func TestRelayReplayAfterWireLoss(t *testing.T) {
	const n = 200
	src, sink := runRelayPair(t, n, 7)
	if len(src.acked) != n {
		t.Fatalf("acked %d of %d messages", len(src.acked), n)
	}
	if src.fails.Load() == 0 {
		t.Fatalf("expected ack-timeout failures for dropped frames")
	}
	sink.mu.Lock()
	defer sink.mu.Unlock()
	if len(sink.distinct) != n {
		t.Fatalf("sink saw %d distinct values, want %d", len(sink.distinct), n)
	}
	if sink.total < n {
		t.Fatalf("sink total %d < %d", sink.total, n)
	}
}

// TestInjectAcksGuards covers the misuse paths: acking disabled, and a
// forwarding runtime refusing injection.
func TestInjectAcksGuards(t *testing.T) {
	plain := NewTopologyBuilder("no-ack")
	plain.SetSpout("s", func() Spout { return &relayIngress{wire: make(chan wireTuple)} }, 1)
	plain.SetBolt("b", func() Bolt { return &relaySink{} }, 1).Shuffle("s")
	pt, err := plain.Build()
	if err != nil {
		t.Fatal(err)
	}
	ph := pt.Submit()
	defer ph.Stop()
	if err := ph.InjectAcks([]AckUpdate{{Root: 1, Xor: 1}}); err == nil {
		t.Fatalf("InjectAcks on non-acking topology should error")
	}

	fwd := NewTopologyBuilder("fwd")
	fwd.SetAcking(true).SetAckForwarder(func([]AckUpdate) {})
	fwd.SetSpout("s", func() Spout { return &relayIngress{wire: make(chan wireTuple)} }, 1)
	fwd.SetBolt("b", func() Bolt { return &relaySink{} }, 1).Shuffle("s")
	ft, err := fwd.Build()
	if err != nil {
		t.Fatal(err)
	}
	fh := ft.Submit()
	defer fh.Stop()
	if err := fh.InjectAcks([]AckUpdate{{Root: 1, Xor: 1}}); err == nil {
		t.Fatalf("InjectAcks on forwarding topology should error")
	}
}
