package stream

import (
	"context"
	"fmt"
	"strconv"
	"sync"
	"testing"
	"time"
)

// BenchmarkEmitRoute measures the emit→route→buffer path of the batched
// transport in isolation: one collector emitting fields-grouped tuples to
// a 4-task sink, with drainer goroutines recycling tuples to the free
// list the way runBoltTask does. The acceptance target is ≤1 alloc/op:
// the Values slice is the only per-emit allocation; the tuple itself
// comes from the pool and the grouping hash is allocation-free.
func BenchmarkEmitRoute(b *testing.B) {
	tb := NewTopologyBuilder("bench")
	tb.SetSpout("src", func() Spout { return &rangeSpout{n: 0} }, 1)
	tb.SetBolt("sink", func() Bolt {
		return &BoltFunc{Fn: func(*Tuple, Collector) error { return nil }}
	}, 4).Fields("src", "n")
	topo, err := tb.Build()
	if err != nil {
		b.Fatal(err)
	}
	rt := newRuntime(topo, nil)

	var wg sync.WaitGroup
	for _, tk := range rt.taskList("sink") {
		wg.Add(1)
		go func(tk *task) {
			defer wg.Done()
			for batch := range tk.in {
				for _, tup := range batch {
					tup.release()
				}
				rt.pending.Add(-int64(len(batch)))
			}
		}(tk)
	}

	// Pre-boxed keys so interface conversion does not allocate per emit.
	const nKeys = 256
	keys := make([]interface{}, nKeys)
	for i := range keys {
		keys[i] = "key-" + strconv.Itoa(i)
	}

	col := newCollector(rt.taskList("src")[0], rt)
	// Warm up: grow the route and destination buffers and seed the tuple
	// pool, so short -benchtime smoke runs measure the steady state.
	for i := 0; i < 4*DefaultMaxBatch; i++ {
		col.Emit(Values{keys[i&(nKeys-1)]})
	}
	col.flushAll()
	time.Sleep(10 * time.Millisecond) // let the drainers recycle tuples
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		col.Emit(Values{keys[i&(nKeys-1)]})
	}
	col.flushAll()
	b.StopTimer()
	for _, tk := range rt.taskList("sink") {
		close(tk.in)
	}
	wg.Wait()
	if got := rt.pending.Load(); got != 0 {
		b.Fatalf("pending = %d after drain, want 0", got)
	}
}

// TestTicksSkippedCounted saturates a slow bolt's input queue and checks
// that dropped interval ticks are surfaced in the TicksSkipped metric
// instead of vanishing silently.
func TestTicksSkippedCounted(t *testing.T) {
	tb := NewTopologyBuilder("t")
	// maxBatch 1 makes every tuple its own batch, so the spout can fill
	// the bolt's input queue (DefaultQueueDepth batches) outright while
	// the bolt sleeps on each tuple.
	tb.SetMaxBatch(1)
	tb.SetSpout("spout", func() Spout { return &rangeSpout{n: DefaultQueueDepth + 200} }, 1)
	tb.SetBolt("slow", func() Bolt {
		return &BoltFunc{Fn: func(tp *Tuple, _ Collector) error {
			if !tp.IsTick() {
				time.Sleep(200 * time.Microsecond)
			}
			return nil
		}}
	}, 1).Shuffle("spout").Tick(100 * time.Microsecond)
	topo, err := tb.Build()
	if err != nil {
		t.Fatal(err)
	}
	m, err := topo.Run(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	if m.Components["slow"].TicksSkipped == 0 {
		t.Fatal("no ticks skipped despite a saturated queue")
	}
}

// TestWaitQuiescentPrompt checks the backoff variant of waitQuiescent
// still detects quiescence quickly: it must block while work is pending
// and return within a few backoff periods once the count reaches zero.
func TestWaitQuiescentPrompt(t *testing.T) {
	tb := NewTopologyBuilder("t")
	tb.SetSpout("s", func() Spout { return &rangeSpout{n: 0} }, 1)
	tb.SetBolt("b", func() Bolt {
		return &BoltFunc{Fn: func(*Tuple, Collector) error { return nil }}
	}, 1).Shuffle("s")
	topo, err := tb.Build()
	if err != nil {
		t.Fatal(err)
	}
	rt := newRuntime(topo, nil)
	rt.pending.Add(1)
	const hold = 10 * time.Millisecond
	go func() {
		time.Sleep(hold)
		rt.pending.Add(-1)
	}()
	start := time.Now()
	rt.waitQuiescent()
	elapsed := time.Since(start)
	if elapsed < hold {
		t.Fatalf("waitQuiescent returned after %v with work still pending", elapsed)
	}
	// The backoff is capped at 2ms, so detection lags the final ack by at
	// most one capped sleep plus scheduling noise.
	if elapsed > hold+100*time.Millisecond {
		t.Fatalf("waitQuiescent took %v, want within ~%v", elapsed, hold+100*time.Millisecond)
	}
}

// keyedSpout emits (key, seq) pairs round-robin over its own disjoint key
// space, with seq strictly increasing per key. The occasional sleep keeps
// the topology running long enough for fault injection to land mid-flow.
type keyedSpout struct {
	task    int
	keys    int
	perKey  int
	emitted int
	c       SpoutCollector
}

func (s *keyedSpout) Open(ctx TopologyContext, c SpoutCollector) error {
	s.task = ctx.TaskIndex
	s.c = c
	s.emitted = 0
	return nil
}

func (s *keyedSpout) NextTuple() bool {
	if s.emitted >= s.keys*s.perKey {
		return false
	}
	key := fmt.Sprintf("s%d-k%d", s.task, s.emitted%s.keys)
	seq := s.emitted / s.keys
	s.c.Emit(Values{key, seq})
	s.emitted++
	if s.emitted%64 == 0 {
		time.Sleep(200 * time.Microsecond)
	}
	return true
}

func (s *keyedSpout) Close() {}

func (s *keyedSpout) DeclareOutputFields() map[string]Fields {
	return map[string]Fields{DefaultStream: {"key", "seq"}}
}

// TestStressFieldsGroupingUnderRestarts runs a multi-stage fields-grouped
// topology at parallelism ≥4 with repeated RestartTask fault injection on
// the middle bolt, and asserts that the batched transport preserves the
// per-(source-task, dest-task) ordering guarantee: every key's sequence
// arrives exactly once, in order, at a single sink task. Run under -race
// (scripts/check.sh does) to also exercise the transport's memory model.
func TestStressFieldsGroupingUnderRestarts(t *testing.T) {
	const (
		spouts = 2
		keys   = 8 // per spout task, disjoint across tasks by construction
		perKey = 400
	)
	mu := &sync.Mutex{}
	st := &sinkState{next: make(map[string]int), task: make(map[string]int)}
	var orderErr error

	tb := NewTopologyBuilder("stress")
	tb.SetSpout("spout", func() Spout { return &keyedSpout{keys: keys, perKey: perKey} }, spouts)
	tb.SetBolt("mid", func() Bolt {
		return &BoltFunc{
			Fn: func(tp *Tuple, c Collector) error {
				if tp.IsTick() {
					return nil
				}
				c.Emit(Values{tp.Value("key"), tp.Value("seq")})
				return nil
			},
			Output: Fields{"key", "seq"},
		}
	}, 4).Fields("spout", "key")
	tb.SetBolt("sink", func() Bolt {
		return &taskAwareSink{mu: mu, st: st, errp: &orderErr}
	}, 4).Fields("mid", "key")
	topo, err := tb.Build()
	if err != nil {
		t.Fatal(err)
	}

	h := topo.Submit()
	// Inject restarts into every middle-bolt task while tuples flow.
	for i := 0; i < 12; i++ {
		time.Sleep(2 * time.Millisecond)
		if err := h.RestartTask("mid", i%4); err != nil {
			break // topology already drained; injection window over
		}
	}
	h.Wait()

	mu.Lock()
	defer mu.Unlock()
	if orderErr != nil {
		t.Fatal(orderErr)
	}
	if got, want := len(st.next), spouts*keys; got != want {
		t.Fatalf("sink saw %d distinct keys, want %d", got, want)
	}
	for key, n := range st.next {
		if n != perKey {
			t.Fatalf("key %s: saw %d tuples, want exactly %d", key, n, perKey)
		}
	}
	var restarts int64
	for i := 0; i < 4; i++ {
		restarts += h.Restarts("mid", i)
	}
	if restarts == 0 {
		t.Fatal("no restarts landed; fault injection did not exercise the topology")
	}
}

// sinkState is the shared record of what the stress-test sink observed:
// the next expected sequence number and the owning task per key.
type sinkState struct {
	next map[string]int
	task map[string]int
}

// taskAwareSink verifies per-key delivery order, exactly-once counts and
// single-task ownership under fields grouping.
type taskAwareSink struct {
	mu   *sync.Mutex
	st   *sinkState
	errp *error
	task int
}

func (b *taskAwareSink) Prepare(ctx TopologyContext, _ Collector) error {
	b.task = ctx.TaskIndex
	return nil
}

func (b *taskAwareSink) Execute(tp *Tuple) error {
	if tp.IsTick() {
		return nil
	}
	key := tp.Str("key")
	seq := tp.Value("seq").(int)
	b.mu.Lock()
	defer b.mu.Unlock()
	if *b.errp != nil {
		return nil
	}
	if prev, ok := b.st.task[key]; ok && prev != b.task {
		*b.errp = fmt.Errorf("key %s executed on tasks %d and %d", key, prev, b.task)
		return nil
	}
	b.st.task[key] = b.task
	if want := b.st.next[key]; seq != want {
		*b.errp = fmt.Errorf("key %s: got seq %d, want %d (reordered or dropped)", key, seq, want)
		return nil
	}
	b.st.next[key]++
	return nil
}

func (b *taskAwareSink) Cleanup() {}
