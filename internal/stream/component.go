package stream

// TopologyContext gives a component instance information about where it
// runs: which task index it is, how many sibling tasks exist, and the
// topology-level configuration.
type TopologyContext struct {
	// Component is the name this component was registered under.
	Component string
	// TaskIndex identifies this task among the component's tasks,
	// in [0, NumTasks).
	TaskIndex int
	// NumTasks is the component's parallelism.
	NumTasks int
	// Config holds arbitrary topology-level configuration values,
	// e.g. store endpoints, shared by all components.
	Config map[string]interface{}
	// Acking reports whether the topology runs with at-least-once
	// delivery enabled (TopologyBuilder.SetAcking). Spouts use it to
	// decide whether to hold emitted messages for replay.
	Acking bool
}

// Collector is how bolts emit tuples downstream.
// Collectors are safe for use only from the owning task's goroutine,
// matching Storm's single-threaded executor model.
type Collector interface {
	// Emit sends values on the component's default stream.
	Emit(values Values)
	// EmitTo sends values on the named stream.
	EmitTo(stream string, values Values)
}

// SpoutCollector is how spouts emit tuples into the topology.
type SpoutCollector interface {
	Collector
	// EmitAnchored sends values on the default stream anchored to the
	// given spout message id: the engine tracks the tuple and everything
	// transitively emitted while processing it, and eventually reports
	// exactly one of Ack(id) or Fail(id) back to the spout. When acking
	// is disabled, or the spout does not implement AckingSpout, it
	// behaves exactly like Emit.
	EmitAnchored(msgID interface{}, values Values)
	// EmitAnchoredTo is EmitAnchored on a named stream.
	EmitAnchoredTo(stream string, msgID interface{}, values Values)
}

// AckingSpout is a Spout that participates in at-least-once delivery:
// messages it emits with EmitAnchored are either acknowledged once fully
// processed or failed (on drop or ack timeout), in which case the spout
// is expected to replay the message by re-emitting it. Both callbacks run
// on the spout task's goroutine, between NextTuple calls, and must
// tolerate ids the instance does not know (a restarted instance may
// receive results for its predecessor's messages).
type AckingSpout interface {
	Spout
	// Ack reports that the message anchored with this id — and every
	// tuple transitively derived from it — was executed.
	Ack(msgID interface{})
	// Fail reports that some tuple derived from the message was dropped
	// without execution, or that the lineage did not complete within the
	// ack timeout.
	Fail(msgID interface{})
}

// Spout produces the input streams of a topology (§5.1: "A spout is
// responsible for producing the input stream for a Storm cluster").
//
// Implementations must be created by a factory (see TopologyBuilder) so the
// supervisor can relaunch a fresh, state-free instance after a failure.
type Spout interface {
	// Open prepares the spout instance.
	Open(ctx TopologyContext, collector SpoutCollector) error
	// NextTuple emits zero or more tuples via the collector.
	// Returning false signals that the spout is exhausted; the engine
	// then drains the topology and shuts down. Production spouts that
	// never exhaust always return true.
	NextTuple() bool
	// Close releases spout resources.
	Close()
}

// Bolt consumes input streams and may emit new streams (§5.1: "A bolt may
// consume any number of input streams and transform those streams in some
// way").
//
// A bolt task is executed by exactly one goroutine, so Execute never runs
// concurrently with itself on the same instance.
type Bolt interface {
	// Prepare initializes the bolt instance.
	Prepare(ctx TopologyContext, collector Collector) error
	// Execute processes one input tuple. Tick tuples (t.IsTick())
	// are delivered on TickStream when the bolt is configured with a
	// tick interval.
	Execute(t *Tuple) error
	// Cleanup releases bolt resources on orderly shutdown.
	Cleanup()
}

// OutputDeclarer lists the streams a component emits with their fields.
// Components implement it so the engine can route by field name.
type OutputDeclarer interface {
	// DeclareOutputFields maps each emitted stream id to its field names.
	// Components that only use the default stream map DefaultStream.
	DeclareOutputFields() map[string]Fields
}

// BoltFunc adapts a function to the Bolt interface for simple stateless
// transforms. The declared output is a single default stream with the
// given fields.
type BoltFunc struct {
	// Fn processes each tuple.
	Fn func(t *Tuple, c Collector) error
	// Output names the fields of the default output stream; may be nil
	// for terminal bolts.
	Output Fields

	collector Collector
}

// Prepare implements Bolt.
func (b *BoltFunc) Prepare(_ TopologyContext, c Collector) error {
	b.collector = c
	return nil
}

// Execute implements Bolt.
func (b *BoltFunc) Execute(t *Tuple) error { return b.Fn(t, b.collector) }

// Cleanup implements Bolt.
func (b *BoltFunc) Cleanup() {}

// DeclareOutputFields implements OutputDeclarer.
func (b *BoltFunc) DeclareOutputFields() map[string]Fields {
	if b.Output == nil {
		return nil
	}
	return map[string]Fields{DefaultStream: b.Output}
}
