package stream

import "errors"

// This file is the stream engine's seam for out-of-process topologies
// (internal/cluster): a topology partitioned across worker processes
// keeps ONE acker — in the runtime hosting the spouts — and every other
// runtime forwards its lineage updates there over the wire. Three small
// hooks make that work without touching the hot paths:
//
//   - AnchorRemote lets a forwarding bolt (an egress proxy) mint a fresh
//     lineage id for a tuple that is about to LEAVE the runtime, folded
//     into the executing tuple's ack exactly as a local child would be;
//   - EmitRelayed lets an ingress proxy spout re-emit a tuple that
//     ARRIVED from another runtime under its existing lineage
//     (root, id), acking the wire id against the local delivery ids it
//     fans out to — the lineage algebra of a bolt execution;
//   - SetAckForwarder turns a runtime's acker into a pure relay: instead
//     of resolving roots it hands every update batch to a callback, which
//     the cluster layer ships to the acker runtime, where InjectAcks
//     folds them into the real pending map.
//
// The XOR accounting telescopes across process boundaries: every id
// still enters the stream exactly twice (minted on one side of the wire,
// acked on the other), so a root completes only when every tuple of its
// tree — on any worker — has been executed, and a worker killed mid-tree
// leaves the root incomplete until the ack timeout fails it back to the
// spout for replay. See DESIGN.md §18 for the full contract.

// AckUpdate is one lineage update crossing a process boundary: an ack
// folds Xor into the root's accumulator, a fail marks the root failed.
// It is the wire-portable subset of the acker's internal message type
// (init updates never cross — spouts live with the acker).
type AckUpdate struct {
	Fail bool
	Root uint64
	Xor  uint64
}

// AckForwarder receives lineage update batches leaving a relay runtime.
// Called from the runtime's acker goroutine; the slice is owned by the
// callee. Implementations must not block indefinitely — the acker
// goroutine is the only consumer of every task's ack traffic.
type AckForwarder func(updates []AckUpdate)

// RemoteAnchorer is implemented by the collectors handed to bolts. An
// egress proxy bolt calls AnchorRemote once per tuple it forwards out of
// the process, and sends the returned lineage pair with the tuple.
type RemoteAnchorer interface {
	// AnchorRemote mints a fresh lineage id for a delivery leaving the
	// runtime, folded into the currently-executing tuple's ack. Returns
	// (0, 0) when the executing tuple is unanchored or acking is off —
	// forward the tuple without lineage in that case.
	AnchorRemote() (root, id uint64)
}

// RelayCollector is implemented by the collectors handed to spouts. An
// ingress proxy spout calls EmitRelayed for each tuple received from
// another runtime, preserving its lineage.
type RelayCollector interface {
	Collector
	// EmitRelayed emits values on the named stream under an existing
	// lineage: the tuple's local deliveries are anchored to root, and the
	// wire id is acked against their ids (id XOR children). With root
	// zero — an unanchored tuple, or a sending runtime without acking —
	// it degrades to a plain EmitTo.
	EmitRelayed(stream string, values Values, root, id uint64)
}

// AnchorRemote implements RemoteAnchorer.
func (c *collector) AnchorRemote() (root, id uint64) {
	if c.curRoot == 0 || c.ak == nil {
		return 0, 0
	}
	id = c.newAckID()
	c.curXor ^= id
	return c.curRoot, id
}

// EmitRelayed implements RelayCollector. It mirrors the acked bolt
// execute path: the re-emitted tuple's local deliveries get fresh ids
// XORed against the inbound wire id, and the update is queued to the
// (forwarding or real) acker on the task's flush schedule.
func (c *collector) EmitRelayed(stream string, values Values, root, id uint64) {
	if root == 0 || c.ak == nil {
		c.emitTo(stream, values)
		return
	}
	c.curRoot, c.curXor = root, id
	c.emitTo(stream, values)
	xor := c.curXor
	c.curRoot = 0
	c.pushAckerMsg(ackerMsg{kind: ackerAck, root: root, xor: xor})
}

// SetAckForwarder puts the topology's acker into relay mode: lineage
// updates from bolts (acks, drop-fails) are batched to fn instead of
// being resolved locally. Requires SetAcking(true). A relaying runtime
// hosts no anchoring spouts — EmitAnchored degrades to Emit there, since
// the spout's init (message id, replay callback) cannot cross the wire.
func (tb *TopologyBuilder) SetAckForwarder(fn AckForwarder) *TopologyBuilder {
	tb.ackForward = fn
	return tb
}

// InjectAcks folds lineage updates received from relay runtimes into
// this topology's acker, as if local tasks had produced them. Only valid
// on the runtime that owns the real acker (acking on, no forwarder).
func (h *RunningTopology) InjectAcks(updates []AckUpdate) error {
	rt := h.rt
	if rt.ak == nil {
		return errors.New("stream: InjectAcks: acking is disabled on this topology")
	}
	if rt.ak.forward != nil {
		return errors.New("stream: InjectAcks: this runtime forwards acks; inject at the acker runtime")
	}
	if len(updates) == 0 {
		return nil
	}
	msgs := make([]ackerMsg, len(updates))
	for i, u := range updates {
		kind := ackerAck
		if u.Fail {
			kind = ackerFail
		}
		msgs[i] = ackerMsg{kind: kind, root: u.Root, xor: u.Xor}
	}
	select {
	case rt.ak.in <- msgs:
		return nil
	case <-h.done:
		return errors.New("stream: InjectAcks: topology already shut down")
	}
}
