package stream

import (
	"fmt"
	"hash/fnv"
	"testing"
	"testing/quick"
)

// refHashValues is the pre-optimization reference implementation of the
// grouping hash: FNV-1a over fmt "%v" rendering of each present field,
// with a NUL separator folded after every field. hashValues must produce
// bit-identical output so that fields-grouping task assignment is stable
// across the optimization.
func refHashValues(t *Tuple, fields Fields) uint64 {
	h := fnv.New64a()
	for _, f := range fields {
		v, ok := t.TryValue(f)
		if !ok {
			continue
		}
		fmt.Fprintf(h, "%v", v)
		h.Write([]byte{0})
	}
	return h.Sum64()
}

func TestHashValuesMatchesReference(t *testing.T) {
	mk := func(vals Values, names Fields) *Tuple {
		return &Tuple{Component: "c", Stream: DefaultStream, Values: vals, fields: names}
	}
	cases := []struct {
		name   string
		tuple  *Tuple
		fields Fields
	}{
		{"string", mk(Values{"user-42"}, Fields{"k"}), Fields{"k"}},
		{"empty string", mk(Values{""}, Fields{"k"}), Fields{"k"}},
		{"int", mk(Values{12345}, Fields{"k"}), Fields{"k"}},
		{"negative int", mk(Values{-7}, Fields{"k"}), Fields{"k"}},
		{"int64", mk(Values{int64(1) << 40}, Fields{"k"}), Fields{"k"}},
		{"int32", mk(Values{int32(-99)}, Fields{"k"}), Fields{"k"}},
		{"uint", mk(Values{uint(88)}, Fields{"k"}), Fields{"k"}},
		{"uint64", mk(Values{^uint64(0)}, Fields{"k"}), Fields{"k"}},
		{"uint32", mk(Values{uint32(7)}, Fields{"k"}), Fields{"k"}},
		{"float64", mk(Values{3.25}, Fields{"k"}), Fields{"k"}},
		{"float64 small", mk(Values{0.000001220703125}, Fields{"k"}), Fields{"k"}},
		{"float32", mk(Values{float32(1.5)}, Fields{"k"}), Fields{"k"}},
		{"bool true", mk(Values{true}, Fields{"k"}), Fields{"k"}},
		{"bool false", mk(Values{false}, Fields{"k"}), Fields{"k"}},
		{"multi field", mk(Values{"item", 3, 2.5}, Fields{"a", "b", "c"}), Fields{"a", "b", "c"}},
		{"subset of fields", mk(Values{"x", "y"}, Fields{"a", "b"}), Fields{"b"}},
		{"missing field skipped", mk(Values{"x"}, Fields{"a"}), Fields{"a", "nope"}},
		{"exotic fallback", mk(Values{[]int{1, 2}}, Fields{"k"}), Fields{"k"}},
	}
	for _, c := range cases {
		t.Run(c.name, func(t *testing.T) {
			got := hashValues(c.tuple, c.fields)
			want := refHashValues(c.tuple, c.fields)
			if got != want {
				t.Fatalf("hashValues = %#x, reference = %#x", got, want)
			}
		})
	}
}

func TestHashValuesMatchesReferenceProperty(t *testing.T) {
	f := func(s string, i int64, u uint64, fl float64, b bool) bool {
		tu := &Tuple{
			Values: Values{s, i, u, fl, b},
			fields: Fields{"s", "i", "u", "f", "b"},
		}
		return hashValues(tu, tu.fields) == refHashValues(tu, tu.fields)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestHashValuesNoAllocs(t *testing.T) {
	tu := &Tuple{
		Values: Values{"user-12345", 987654321, 2.718281828, true},
		fields: Fields{"user", "n", "w", "flag"},
	}
	fields := tu.fields
	allocs := testing.AllocsPerRun(1000, func() {
		_ = hashValues(tu, fields)
	})
	if allocs != 0 {
		t.Fatalf("hashValues allocates %v per run, want 0", allocs)
	}
}

func BenchmarkHashValues(b *testing.B) {
	tu := &Tuple{
		Values: Values{"user-12345", 987654321, 2.718281828},
		fields: Fields{"user", "n", "w"},
	}
	fields := tu.fields
	b.ReportAllocs()
	b.ResetTimer()
	var sink uint64
	for i := 0; i < b.N; i++ {
		sink += hashValues(tu, fields)
	}
	_ = sink
}
