package stream

import (
	"strconv"

	"tencentrec/internal/obsv"
)

// registerObservability binds a running topology's metrics into an obsv
// Registry. Everything is registered as exposition-time callbacks over
// state the engine already maintains (the per-task metrics shards and
// input channels), so enabling Prometheus exposition adds zero hot-path
// cost beyond what the engine pays anyway. Re-submitting a topology with
// the same registry re-binds the callbacks to the new runtime — the
// ...Func registrations replace their predecessors.
func (rt *runtime) registerObservability(r *obsv.Registry) {
	rt.registry = r
	for name, cm := range rt.metrics.components {
		cm := cm
		r.CounterFunc("stream_emitted_total",
			"Tuples emitted by the component on any stream.",
			func() int64 {
				return cm.sum(
					func(c *componentMetrics) int64 { return c.foldedEmitted },
					func(sh *metricsShard) int64 { return sh.emitted.Load() })
			},
			"component", name)
		r.CounterFunc("stream_executed_total",
			"Tuples processed by the component's Execute.",
			func() int64 {
				return cm.sum(
					func(c *componentMetrics) int64 { return c.foldedExecuted },
					func(sh *metricsShard) int64 { return sh.executed.Load() })
			},
			"component", name)
		r.CounterFunc("stream_errors_total",
			"Execute calls that returned an error.",
			func() int64 {
				return cm.sum(
					func(c *componentMetrics) int64 { return c.foldedErrors },
					func(sh *metricsShard) int64 { return sh.errors.Load() })
			},
			"component", name)
		r.CounterFunc("stream_dropped_total",
			"Data tuples discarded without execution (failed restart drain).",
			func() int64 { return cm.dropped.Load() },
			"component", name)
		r.CounterFunc("stream_failed_total",
			"Anchored spout messages failed back to this spout.",
			func() int64 { return cm.failed.Load() },
			"component", name)
		r.CounterFunc("stream_ticks_skipped_total",
			"Interval ticks dropped because a task queue was full.",
			func() int64 { return cm.ticksSkipped.Load() },
			"component", name)
		r.HistogramFunc("stream_execute_seconds",
			"Per-tuple Execute latency, merged across the component's tasks.",
			cm.execSnapshot,
			"component", name)
	}
	r.CounterFunc("stream_transferred_total",
		"Tuple deliveries across all edges (replication counted per copy).",
		func() int64 {
			var n int64
			for _, cm := range rt.metrics.components {
				n += cm.sum(
					func(c *componentMetrics) int64 { return c.foldedTransferred },
					func(sh *metricsShard) int64 { return sh.transferred.Load() })
			}
			return n
		})
	for name, ct := range rt.comps {
		ct := ct
		r.GaugeFunc("stream_tasks",
			"Live task count of the component (changes on rebalance).",
			func() int64 { return int64(len(ct.tasks())) },
			"component", name)
		rt.ensureQueueGauges(name, len(ct.tasks()))
	}
	r.CounterFunc("stream_rebalances_total",
		"Completed live rebalances on this topology.",
		func() int64 { return rt.rebalances.Load() })
	if rt.bp != nil {
		r.CounterFunc("stream_backpressure_pauses_total",
			"Times the spout throttle tripped the high-water mark.",
			func() int64 { return rt.bp.pauses.Load() })
		r.CounterFunc("stream_backpressure_paused_nanos_total",
			"Cumulative nanoseconds spouts spent paused by backpressure.",
			func() int64 { return rt.bp.pausedNanos.Load() })
		r.GaugeFunc("stream_backpressure_active",
			"1 while spouts are paused by the throttle, else 0.",
			func() int64 {
				if rt.bp.active.Load() {
					return 1
				}
				return 0
			})
	}
	if rt.ovf != nil {
		r.CounterFunc("stream_overflow_spilled_batches_total",
			"Batches diverted to the disk overflow ring.",
			func() int64 { return rt.ovf.spilledBatches.Load() })
		r.CounterFunc("stream_overflow_drained_batches_total",
			"Batches replayed from the disk overflow ring.",
			func() int64 { return rt.ovf.drainedBatches.Load() })
		r.CounterFunc("stream_overflow_spilled_tuples_total",
			"Tuples diverted to the disk overflow ring.",
			func() int64 { return rt.ovf.spilledTuples.Load() })
		r.GaugeFunc("stream_overflow_backlog_batches",
			"Batches currently sitting in the disk overflow ring.",
			func() int64 { return rt.ovf.backlog() })
	}
}

// ensureQueueGauges registers per-task queue-depth gauges for task
// indexes [0, n). A rebalance that scales a component past its previous
// maximum calls this again for the new indexes; gauges for indexes above
// the current task count read 0. Each gauge re-resolves the task through
// the component's live assignment, so retired generations are never read.
func (rt *runtime) ensureQueueGauges(name string, n int) {
	if rt.registry == nil {
		return
	}
	if n <= rt.gaugeMax[name] {
		return
	}
	ct := rt.comps[name]
	for i := rt.gaugeMax[name]; i < n; i++ {
		i := i
		rt.registry.GaugeFunc("stream_queue_depth_batches",
			"Batches waiting in a task's input queue.",
			func() int64 {
				tasks := ct.tasks()
				if i >= len(tasks) {
					return 0
				}
				return int64(len(tasks[i].in))
			},
			"component", name, "task", strconv.Itoa(i))
	}
	rt.gaugeMax[name] = n
}
