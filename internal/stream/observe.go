package stream

import (
	"strconv"

	"tencentrec/internal/obsv"
)

// registerObservability binds a running topology's metrics into an obsv
// Registry. Everything is registered as exposition-time callbacks over
// state the engine already maintains (the per-task metrics shards and
// input channels), so enabling Prometheus exposition adds zero hot-path
// cost beyond what the engine pays anyway. Re-submitting a topology with
// the same registry re-binds the callbacks to the new runtime — the
// ...Func registrations replace their predecessors.
func (rt *runtime) registerObservability(r *obsv.Registry) {
	for name, cm := range rt.metrics.components {
		cm := cm
		sum := func(read func(*metricsShard) int64) func() int64 {
			return func() int64 {
				var n int64
				for i := range cm.shards {
					n += read(&cm.shards[i])
				}
				return n
			}
		}
		r.CounterFunc("stream_emitted_total",
			"Tuples emitted by the component on any stream.",
			sum(func(sh *metricsShard) int64 { return sh.emitted.Load() }),
			"component", name)
		r.CounterFunc("stream_executed_total",
			"Tuples processed by the component's Execute.",
			sum(func(sh *metricsShard) int64 { return sh.executed.Load() }),
			"component", name)
		r.CounterFunc("stream_errors_total",
			"Execute calls that returned an error.",
			sum(func(sh *metricsShard) int64 { return sh.errors.Load() }),
			"component", name)
		r.CounterFunc("stream_dropped_total",
			"Data tuples discarded without execution (failed restart drain).",
			func() int64 { return cm.dropped.Load() },
			"component", name)
		r.CounterFunc("stream_failed_total",
			"Anchored spout messages failed back to this spout.",
			func() int64 { return cm.failed.Load() },
			"component", name)
		r.CounterFunc("stream_ticks_skipped_total",
			"Interval ticks dropped because a task queue was full.",
			func() int64 { return cm.ticksSkipped.Load() },
			"component", name)
		r.HistogramFunc("stream_execute_seconds",
			"Per-tuple Execute latency, merged across the component's tasks.",
			cm.execSnapshot,
			"component", name)
	}
	r.CounterFunc("stream_transferred_total",
		"Tuple deliveries across all edges (replication counted per copy).",
		func() int64 {
			var n int64
			for _, cm := range rt.metrics.components {
				for i := range cm.shards {
					n += cm.shards[i].transferred.Load()
				}
			}
			return n
		})
	for name, tasks := range rt.tasks {
		for i, tk := range tasks {
			tk := tk
			r.GaugeFunc("stream_queue_depth_batches",
				"Batches waiting in a task's input queue.",
				func() int64 { return int64(len(tk.in)) },
				"component", name, "task", strconv.Itoa(i))
		}
	}
}
