package stream

import (
	"time"
)

// This file implements Storm's at-least-once delivery machinery: anchored
// emission, the XOR-lineage acker task, and the ack/fail feedback path to
// spouts (§3.1, §3.3 of the paper's Storm substrate).
//
// Every anchored delivery is tagged with a random non-zero 64-bit id. The
// spout's anchoring message and every bolt ack XOR the ids they know about
// into a per-root accumulator: an id enters the accumulator exactly twice
// (once when its tuple is created, once when it is executed), so the
// accumulator returns to zero precisely when every tuple in the root's
// lineage tree has been executed. A random id colliding into a premature
// zero has probability 2^-64 per tuple, which Storm — and this engine —
// accepts.
//
// Acking is optional and off by default: with acking disabled the emit
// path is unchanged (shared pooled tuples, no per-delivery ids), so the
// batched-transport throughput of DESIGN.md §10 is preserved.

// DefaultAckTimeout is how long the acker waits for a root's lineage to
// complete before failing it back to the spout, unless overridden with
// TopologyBuilder.SetAckTimeout.
const DefaultAckTimeout = 30 * time.Second

// ackerFlushLen caps a task's local acker-update buffer; a full buffer is
// handed to the acker immediately instead of waiting for the next
// transport flush.
const ackerFlushLen = 256

// DefaultAckerQueueDepth bounds the acker's input channel, in batches,
// unless overridden with TopologyBuilder.SetAckerQueueDepth. A full
// channel exerts backpressure on the sending tasks.
const DefaultAckerQueueDepth = 1024

type ackerMsgKind uint8

const (
	// ackerInit anchors a new root: carries the spout task, the spout's
	// message id, and the XOR of the ids of the root's first-level tuples.
	ackerInit ackerMsgKind = iota
	// ackerAck folds an executed tuple's id and its children's ids into
	// the root's accumulator.
	ackerAck
	// ackerFail marks the root failed (a tuple in its tree was dropped
	// without execution).
	ackerFail
)

// ackerMsg is one update to a root's lineage state.
type ackerMsg struct {
	kind  ackerMsgKind
	root  uint64
	xor   uint64
	spout *task       // ackerInit only
	msgID interface{} // ackerInit only
}

// rootEntry is the acker's record of one outstanding spout message.
type rootEntry struct {
	xor      uint64
	spout    *task
	msgID    interface{}
	hasInit  bool
	failed   bool
	deadline time.Time
}

// acker is the per-topology lineage-tracking task. It owns the pending
// map exclusively; tasks talk to it only through the in channel, and it
// reports completions to spout tasks through their mailboxes.
type acker struct {
	rt      *runtime
	timeout time.Duration
	in      chan []ackerMsg
	stop    chan struct{}
	done    chan struct{}
	pending map[uint64]*rootEntry
	// forward, when set, turns the acker into a relay (see relay.go):
	// updates are translated to AckUpdates and handed to the callback
	// instead of being resolved here. Used by cluster worker runtimes,
	// whose lineage state lives with the acker of the spout-hosting
	// process.
	forward AckForwarder
}

func newAcker(rt *runtime, timeout time.Duration, depth int) *acker {
	if timeout <= 0 {
		timeout = DefaultAckTimeout
	}
	if depth <= 0 {
		depth = DefaultAckerQueueDepth
	}
	return &acker{
		rt:      rt,
		timeout: timeout,
		in:      make(chan []ackerMsg, depth),
		stop:    make(chan struct{}),
		done:    make(chan struct{}),
		pending: make(map[uint64]*rootEntry),
	}
}

// run is the acker goroutine: it folds update batches into the pending
// map and periodically reaps roots that outlived the ack timeout.
func (a *acker) run() {
	defer close(a.done)
	reap := a.timeout / 4
	if reap < time.Millisecond {
		reap = time.Millisecond
	}
	if reap > time.Second {
		reap = time.Second
	}
	tick := time.NewTicker(reap)
	defer tick.Stop()
	for {
		select {
		case batch := <-a.in:
			a.process(batch)
		case <-tick.C:
			a.reapExpired()
		case <-a.stop:
			for {
				select {
				case batch := <-a.in:
					a.process(batch)
				default:
					return
				}
			}
		}
	}
}

// shutdown stops the acker after draining already-queued updates. Called
// once all task goroutines (the only senders) have exited.
func (a *acker) shutdown() {
	close(a.stop)
	<-a.done
}

func (a *acker) process(batch []ackerMsg) {
	if a.forward != nil {
		updates := make([]AckUpdate, 0, len(batch))
		for _, m := range batch {
			switch m.kind {
			case ackerAck:
				updates = append(updates, AckUpdate{Root: m.root, Xor: m.xor})
			case ackerFail:
				updates = append(updates, AckUpdate{Fail: true, Root: m.root})
			}
			// ackerInit never happens here: anchorOK is forced off on
			// forwarding runtimes, so spouts degrade to plain emits.
		}
		if len(updates) > 0 {
			a.forward(updates)
		}
		return
	}
	for _, m := range batch {
		e := a.pending[m.root]
		if e == nil {
			// Acks can outrun the spout's init (they travel on different
			// tasks' flushes); a placeholder accumulates them until the
			// init arrives, and is reaped on timeout if it never does.
			e = &rootEntry{deadline: time.Now().Add(a.timeout)}
			a.pending[m.root] = e
		}
		switch m.kind {
		case ackerInit:
			e.hasInit = true
			e.spout = m.spout
			e.msgID = m.msgID
			e.xor ^= m.xor
		case ackerAck:
			e.xor ^= m.xor
		case ackerFail:
			e.failed = true
		}
		if e.hasInit && (e.failed || e.xor == 0) {
			delete(a.pending, m.root)
			a.resolve(e, e.failed)
		}
	}
}

// reapExpired fails every root whose deadline passed: its lineage is
// stuck (a straggler) or its init will never arrive (orphan placeholder).
func (a *acker) reapExpired() {
	now := time.Now()
	for root, e := range a.pending {
		if now.After(e.deadline) {
			delete(a.pending, root)
			a.resolve(e, true)
		}
	}
}

// resolve reports a completed root to its spout task's mailbox. Orphan
// placeholders have no spout to notify and are dropped silently.
func (a *acker) resolve(e *rootEntry, failed bool) {
	if !e.hasInit {
		return
	}
	if failed {
		a.rt.metrics.component(e.spout.component).failed.Add(1)
	}
	e.spout.pushAckResult(ackResult{msgID: e.msgID, failed: failed})
}

// ackResult is one resolved root, queued for the spout task to pick up
// between NextTuple calls.
type ackResult struct {
	msgID  interface{}
	failed bool
}

// pushAckResult appends to the task's mailbox; called by the acker
// goroutine, so it must never block on the task.
func (tk *task) pushAckResult(r ackResult) {
	tk.ackMu.Lock()
	tk.ackBox = append(tk.ackBox, r)
	tk.ackMu.Unlock()
}

// takeAckResults drains the task's mailbox into buf; called by the
// owning spout goroutine.
func (tk *task) takeAckResults(buf []ackResult) []ackResult {
	tk.ackMu.Lock()
	buf = append(buf, tk.ackBox...)
	tk.ackBox = tk.ackBox[:0]
	tk.ackMu.Unlock()
	return buf
}

// EmitAnchored implements SpoutCollector.
func (c *collector) EmitAnchored(msgID interface{}, values Values) {
	c.EmitAnchoredTo(DefaultStream, msgID, values)
}

// EmitAnchoredTo implements SpoutCollector. With acking disabled (or a
// spout that cannot receive Ack/Fail) it degrades to a plain EmitTo, so
// spouts can anchor unconditionally and let the topology decide.
func (c *collector) EmitAnchoredTo(stream string, msgID interface{}, values Values) {
	if !c.anchorOK {
		c.EmitTo(stream, values)
		return
	}
	root := c.newAckID()
	c.curRoot, c.curXor = root, 0
	c.emitTo(stream, values)
	c.curRoot = 0
	c.pushAckerMsg(ackerMsg{kind: ackerInit, root: root, xor: c.curXor, spout: c.task, msgID: msgID})
}

// newAckID draws a non-zero lineage id; zero is reserved to mean
// "unanchored" on tuples.
func (c *collector) newAckID() uint64 {
	for {
		if id := c.task.rng.Uint64(); id != 0 {
			return id
		}
	}
}

// pushAckerMsg queues one acker update locally; updates ride to the acker
// on the next transport flush (flushAll), or immediately when the local
// buffer fills.
func (c *collector) pushAckerMsg(m ackerMsg) {
	c.ackBuf = append(c.ackBuf, m)
	if len(c.ackBuf) >= ackerFlushLen {
		c.flushAcks()
	}
}

// flushAcks hands the buffered updates to the acker as one batch. The
// acker consumes the slice, so a fresh buffer starts on next use.
func (c *collector) flushAcks() {
	if len(c.ackBuf) == 0 {
		return
	}
	buf := c.ackBuf
	c.ackBuf = nil
	c.ak.in <- buf
}
