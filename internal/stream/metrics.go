package stream

import (
	"fmt"
	"sort"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"tencentrec/internal/obsv"
)

// metricsShard holds one task's counters. Each task updates only its own
// shard, so the atomics are uncontended; the struct is padded to a cache
// line so neighbouring tasks never false-share. The hot path batches
// updates further: tasks accumulate plain local counters and fold them
// into the shard once per transport flush, not once per tuple — except
// exec, the per-tuple execute-latency histogram, whose lock-free Observe
// is cheap enough to take per tuple and which percentiles require
// (a folded sum cannot reconstruct a distribution).
type metricsShard struct {
	emitted     atomic.Int64
	executed    atomic.Int64
	errors      atomic.Int64
	transferred atomic.Int64
	// exec observes per-tuple Execute latency in nanoseconds, errored
	// calls included. The histogram lives behind a pointer so the shard
	// array stays one cache line per task.
	exec *obsv.Histogram
	_    [24]byte // pad 4×8 counter bytes + pointer up to a 64-byte line
}

// componentMetrics holds the per-task shards of one component plus the
// folded totals of shards retired by past rebalances. mu guards the
// shards slice identity and the folded accumulators: readers
// (snapshot, exposition callbacks) take it shared, a rebalance's fold
// takes it exclusive. The hot path is untouched — tasks write through
// *metricsShard pointers captured at collector creation, no lock.
type componentMetrics struct {
	mu     sync.RWMutex
	shards []metricsShard
	// Retired-generation accumulators. A rebalance folds the outgoing
	// shards here before replacing the slice, so component totals are
	// continuous across task-count changes.
	foldedEmitted     int64
	foldedExecuted    int64
	foldedErrors      int64
	foldedTransferred int64
	foldedExec        obsv.HistogramSnapshot
	// ticksSkipped counts interval ticks dropped because a task queue
	// was full. Written only by the component's ticker goroutine.
	ticksSkipped atomic.Int64
	// dropped counts data tuples a task discarded without executing them
	// (drainInput after a failed restart).
	dropped atomic.Int64
	// failed counts anchored spout messages reported back to this
	// (spout) component as failed, by drop or by ack timeout. Written by
	// the acker goroutine.
	failed atomic.Int64
}

// fold retires the current shard generation into the accumulators and
// installs n fresh shards for the next generation. Callers must have
// already stopped every task writing to the current shards (rebalance
// folds only after each retired task's goroutine has exited).
func (cm *componentMetrics) fold(n int) {
	cm.mu.Lock()
	defer cm.mu.Unlock()
	for i := range cm.shards {
		sh := &cm.shards[i]
		cm.foldedEmitted += sh.emitted.Load()
		cm.foldedExecuted += sh.executed.Load()
		cm.foldedErrors += sh.errors.Load()
		cm.foldedTransferred += sh.transferred.Load()
		cm.foldedExec.Merge(sh.exec.Snapshot())
	}
	cm.shards = make([]metricsShard, n)
	for i := range cm.shards {
		cm.shards[i].exec = obsv.NewHistogram()
	}
}

// Metrics aggregates live counters for a running topology.
type Metrics struct {
	components map[string]*componentMetrics
	started    time.Time
}

func newMetrics(t *Topology) *Metrics {
	m := &Metrics{components: make(map[string]*componentMetrics), started: time.Now()}
	for _, name := range t.Components() {
		cm := &componentMetrics{shards: make([]metricsShard, t.Parallelism(name))}
		for i := range cm.shards {
			cm.shards[i].exec = obsv.NewHistogram()
		}
		m.components[name] = cm
	}
	return m
}

// execSnapshot merges the per-task execute-latency histograms of one
// component — retired generations included — into a single distribution.
func (cm *componentMetrics) execSnapshot() obsv.HistogramSnapshot {
	cm.mu.RLock()
	defer cm.mu.RUnlock()
	s := cm.foldedExec
	for i := range cm.shards {
		s.Merge(cm.shards[i].exec.Snapshot())
	}
	return s
}

// sum reads one counter across the live shards plus its folded total.
func (cm *componentMetrics) sum(folded func(*componentMetrics) int64, read func(*metricsShard) int64) int64 {
	cm.mu.RLock()
	defer cm.mu.RUnlock()
	n := folded(cm)
	for i := range cm.shards {
		n += read(&cm.shards[i])
	}
	return n
}

func (m *Metrics) component(name string) *componentMetrics { return m.components[name] }

// shard returns the counter shard owned by one task of a component.
func (m *Metrics) shard(name string, task int) *metricsShard {
	cm := m.components[name]
	cm.mu.RLock()
	defer cm.mu.RUnlock()
	return &cm.shards[task]
}

// ComponentStats is a snapshot of one component's counters.
type ComponentStats struct {
	// Emitted counts tuples the component emitted on any stream.
	Emitted int64
	// Executed counts tuples processed by the component's Execute.
	Executed int64
	// Errors counts Execute calls that returned an error.
	Errors int64
	// AvgExecute is the mean per-tuple Execute latency, derived from the
	// same histogram as the percentiles (Sum/Count), so the columns of a
	// snapshot are always mutually consistent. Errored Execute calls are
	// included: an error return still consumed the measured time, and
	// excluding it would make a failing component look faster than it is.
	AvgExecute time.Duration
	// P50Execute, P99Execute and MaxExecute are percentile estimates of
	// the per-tuple Execute latency, from power-of-two-bucketed
	// histograms (bucket-resolution estimates; MaxExecute is exact).
	P50Execute time.Duration
	P99Execute time.Duration
	MaxExecute time.Duration
	// TicksSkipped counts interval ticks dropped because the task's
	// input queue was full at tick time.
	TicksSkipped int64
	// Dropped counts data tuples discarded without execution when a task
	// failed to restart and drained its queue. Always zero on a healthy
	// run.
	Dropped int64
	// Failed counts anchored spout messages failed back to this spout
	// (a tuple in the lineage was dropped, or the ack timeout fired).
	// Only ever non-zero on spouts, and only with acking enabled.
	Failed int64
	// Tasks is the component's live task count at snapshot time, which a
	// Rebalance may have changed from the build-time parallelism.
	Tasks int
}

// MetricsSnapshot is a point-in-time view of topology metrics.
type MetricsSnapshot struct {
	// Transferred counts tuple deliveries across all edges
	// (a tuple replicated to n tasks counts n times).
	Transferred int64
	// Uptime is the time since the topology started.
	Uptime time.Duration
	// Components maps component name to its stats.
	Components map[string]ComponentStats
}

func (m *Metrics) snapshot() *MetricsSnapshot {
	s := &MetricsSnapshot{
		Uptime:     time.Since(m.started),
		Components: make(map[string]ComponentStats, len(m.components)),
	}
	for name, cm := range m.components {
		st := ComponentStats{
			TicksSkipped: cm.ticksSkipped.Load(),
			Dropped:      cm.dropped.Load(),
			Failed:       cm.failed.Load(),
		}
		cm.mu.RLock()
		st.Tasks = len(cm.shards)
		st.Emitted = cm.foldedEmitted
		st.Executed = cm.foldedExecuted
		st.Errors = cm.foldedErrors
		s.Transferred += cm.foldedTransferred
		for i := range cm.shards {
			sh := &cm.shards[i]
			st.Emitted += sh.emitted.Load()
			st.Executed += sh.executed.Load()
			st.Errors += sh.errors.Load()
			s.Transferred += sh.transferred.Load()
		}
		cm.mu.RUnlock()
		if exec := cm.execSnapshot(); exec.Count > 0 {
			st.AvgExecute = time.Duration(exec.Mean())
			st.P50Execute = time.Duration(exec.Quantile(0.50))
			st.P99Execute = time.Duration(exec.Quantile(0.99))
			st.MaxExecute = time.Duration(exec.Max)
		}
		s.Components[name] = st
	}
	return s
}

// String renders the snapshot as a fixed-width table, one component per
// line, for monitor output (§6.1's "monitor to get an overview").
func (s *MetricsSnapshot) String() string {
	names := make([]string, 0, len(s.Components))
	for n := range s.Components {
		names = append(names, n)
	}
	sort.Strings(names)
	var b strings.Builder
	fmt.Fprintf(&b, "uptime=%v transferred=%d\n", s.Uptime.Round(time.Millisecond), s.Transferred)
	fmt.Fprintf(&b, "%-24s %5s %12s %12s %8s %12s %12s %12s %10s %8s %8s\n", "component", "tasks", "emitted", "executed", "errors", "avg-exec", "p50-exec", "p99-exec", "ticks-skip", "dropped", "failed")
	for _, n := range names {
		c := s.Components[n]
		fmt.Fprintf(&b, "%-24s %5d %12d %12d %8d %12v %12v %12v %10d %8d %8d\n", n, c.Tasks, c.Emitted, c.Executed, c.Errors, c.AvgExecute, c.P50Execute, c.P99Execute, c.TicksSkipped, c.Dropped, c.Failed)
	}
	return b.String()
}
