package stream

import (
	"fmt"
	"sort"
	"strings"
	"sync/atomic"
	"time"
)

// componentMetrics holds live counters for one component.
type componentMetrics struct {
	Emitted      atomic.Int64
	Executed     atomic.Int64
	Errors       atomic.Int64
	ExecuteNanos atomic.Int64
}

// Metrics aggregates live counters for a running topology.
type Metrics struct {
	Transferred atomic.Int64
	components  map[string]*componentMetrics
	started     time.Time
}

func newMetrics(t *Topology) *Metrics {
	m := &Metrics{components: make(map[string]*componentMetrics), started: time.Now()}
	for _, name := range t.Components() {
		m.components[name] = &componentMetrics{}
	}
	return m
}

func (m *Metrics) component(name string) *componentMetrics { return m.components[name] }

// ComponentStats is a snapshot of one component's counters.
type ComponentStats struct {
	// Emitted counts tuples the component emitted on any stream.
	Emitted int64
	// Executed counts tuples processed by the component's Execute.
	Executed int64
	// Errors counts Execute calls that returned an error.
	Errors int64
	// AvgExecute is the mean Execute latency.
	AvgExecute time.Duration
}

// MetricsSnapshot is a point-in-time view of topology metrics.
type MetricsSnapshot struct {
	// Transferred counts tuple deliveries across all edges
	// (a tuple replicated to n tasks counts n times).
	Transferred int64
	// Uptime is the time since the topology started.
	Uptime time.Duration
	// Components maps component name to its stats.
	Components map[string]ComponentStats
}

func (m *Metrics) snapshot() *MetricsSnapshot {
	s := &MetricsSnapshot{
		Transferred: m.Transferred.Load(),
		Uptime:      time.Since(m.started),
		Components:  make(map[string]ComponentStats, len(m.components)),
	}
	for name, cm := range m.components {
		st := ComponentStats{
			Emitted:  cm.Emitted.Load(),
			Executed: cm.Executed.Load(),
			Errors:   cm.Errors.Load(),
		}
		if st.Executed > 0 {
			st.AvgExecute = time.Duration(cm.ExecuteNanos.Load() / st.Executed)
		}
		s.Components[name] = st
	}
	return s
}

// String renders the snapshot as a fixed-width table, one component per
// line, for monitor output (§6.1's "monitor to get an overview").
func (s *MetricsSnapshot) String() string {
	names := make([]string, 0, len(s.Components))
	for n := range s.Components {
		names = append(names, n)
	}
	sort.Strings(names)
	var b strings.Builder
	fmt.Fprintf(&b, "uptime=%v transferred=%d\n", s.Uptime.Round(time.Millisecond), s.Transferred)
	fmt.Fprintf(&b, "%-24s %12s %12s %8s %12s\n", "component", "emitted", "executed", "errors", "avg-exec")
	for _, n := range names {
		c := s.Components[n]
		fmt.Fprintf(&b, "%-24s %12d %12d %8d %12v\n", n, c.Emitted, c.Executed, c.Errors, c.AvgExecute)
	}
	return b.String()
}
