package stream

import (
	"fmt"
	"sync/atomic"
	"testing"
	"time"
)

// ackRangeSpout emits the integers [0, n) anchored to their own value and
// tracks the engine's ack/fail feedback. Failed ids are replayed (unless
// noReplay), and the spout only exhausts once every message has been
// acknowledged, like a real offset-committing spout. All fields except
// the atomic counters are touched only from the spout goroutine.
type ackRangeSpout struct {
	n        int
	noReplay bool

	next    int
	pending map[int]bool
	replayQ []int
	c       SpoutCollector

	ackedN  atomic.Int64
	failedN atomic.Int64
}

func (s *ackRangeSpout) Open(_ TopologyContext, c SpoutCollector) error {
	s.c = c
	s.next = 0
	s.pending = make(map[int]bool)
	return nil
}

func (s *ackRangeSpout) NextTuple() bool {
	if len(s.replayQ) > 0 {
		id := s.replayQ[len(s.replayQ)-1]
		s.replayQ = s.replayQ[:len(s.replayQ)-1]
		s.c.EmitAnchored(id, Values{id})
		return true
	}
	if s.next < s.n {
		id := s.next
		s.next++
		s.pending[id] = true
		s.c.EmitAnchored(id, Values{id})
		return true
	}
	if len(s.pending) > 0 {
		time.Sleep(50 * time.Microsecond)
		return true
	}
	return false
}

func (s *ackRangeSpout) Ack(msgID interface{}) {
	id, ok := msgID.(int)
	if !ok || !s.pending[id] {
		return
	}
	delete(s.pending, id)
	s.ackedN.Add(1)
}

func (s *ackRangeSpout) Fail(msgID interface{}) {
	id, ok := msgID.(int)
	if !ok || !s.pending[id] {
		return
	}
	s.failedN.Add(1)
	if s.noReplay {
		delete(s.pending, id)
		return
	}
	s.replayQ = append(s.replayQ, id)
}

func (s *ackRangeSpout) Close() {}

func (s *ackRangeSpout) DeclareOutputFields() map[string]Fields {
	return map[string]Fields{DefaultStream: {"n"}}
}

func TestAckingAcksCompleteLineage(t *testing.T) {
	// spout -> fan (emits 2 children per input) -> sink: every root's ack
	// requires the whole tree to execute, across two bolt layers.
	sp := &ackRangeSpout{n: 500}
	sink, mu, seen := newSink()
	tb := NewTopologyBuilder("t")
	tb.SetAcking(true)
	tb.SetSpout("spout", func() Spout { return sp }, 1)
	tb.SetBolt("fan", func() Bolt {
		return &BoltFunc{
			Fn: func(tp *Tuple, c Collector) error {
				n := tp.Value("n").(int)
				c.Emit(Values{n})
				c.Emit(Values{n})
				return nil
			},
			Output: Fields{"n"},
		}
	}, 2).Shuffle("spout")
	tb.SetBolt("sink", sink, 3).Shuffle("fan")
	topo, err := tb.Build()
	if err != nil {
		t.Fatal(err)
	}
	h := topo.Submit()
	h.Wait()
	if got := sp.ackedN.Load(); got != 500 {
		t.Fatalf("acked %d messages, want 500", got)
	}
	if got := sp.failedN.Load(); got != 0 {
		t.Fatalf("failed %d messages, want 0", got)
	}
	mu.Lock()
	n := len(*seen)
	mu.Unlock()
	if n != 1000 {
		t.Fatalf("sink saw %d tuples, want 1000", n)
	}
	m := h.Metrics()
	for name, c := range m.Components {
		if c.Dropped != 0 || c.Failed != 0 {
			t.Fatalf("%s: dropped=%d failed=%d, want 0/0", name, c.Dropped, c.Failed)
		}
	}
}

func TestEmitAnchoredWithoutAckingFallsBack(t *testing.T) {
	// Same spout, acking not enabled: EmitAnchored degrades to Emit and
	// no callbacks arrive. The spout must not wait for acks, so it only
	// tracks pending when the context says acking is on — emulated here
	// by it never being told acks exist; we use noReplay and a pending
	// override below.
	sp := &ackRangeSpout{n: 100}
	sink, mu, seen := newSink()
	tb := NewTopologyBuilder("t")
	tb.SetSpout("spout", func() Spout { return sp }, 1)
	tb.SetBolt("sink", sink, 2).Shuffle("spout")
	topo, err := tb.Build()
	if err != nil {
		t.Fatal(err)
	}
	done := make(chan struct{})
	h := topo.Submit()
	go func() { h.Wait(); close(done) }()
	// The spout spins waiting for acks that never come (it is not
	// acking-aware like the production spouts); stop it once the sink
	// has everything.
	deadline := time.Now().Add(5 * time.Second)
	for {
		mu.Lock()
		n := len(*seen)
		mu.Unlock()
		if n >= 100 || time.Now().After(deadline) {
			break
		}
		time.Sleep(time.Millisecond)
	}
	h.Stop()
	<-done
	mu.Lock()
	defer mu.Unlock()
	if len(*seen) != 100 {
		t.Fatalf("sink saw %d tuples, want 100", len(*seen))
	}
	if sp.ackedN.Load() != 0 || sp.failedN.Load() != 0 {
		t.Fatalf("callbacks fired without acking: acked=%d failed=%d", sp.ackedN.Load(), sp.failedN.Load())
	}
}

func TestAckTimeoutFailsStragglers(t *testing.T) {
	// A sink that blocks forever (until released) strands the root; the
	// acker's timeout must fail it back to the spout.
	sp := &ackRangeSpout{n: 1, noReplay: true}
	release := make(chan struct{})
	tb := NewTopologyBuilder("t")
	tb.SetAcking(true)
	tb.SetAckTimeout(50 * time.Millisecond)
	tb.SetSpout("spout", func() Spout { return sp }, 1)
	tb.SetBolt("sink", func() Bolt {
		return &BoltFunc{Fn: func(tp *Tuple, _ Collector) error {
			<-release
			return nil
		}}
	}, 1).Shuffle("spout")
	topo, err := tb.Build()
	if err != nil {
		t.Fatal(err)
	}
	h := topo.Submit()
	deadline := time.Now().Add(5 * time.Second)
	for sp.failedN.Load() == 0 && time.Now().Before(deadline) {
		time.Sleep(time.Millisecond)
	}
	close(release)
	h.Wait()
	if got := sp.failedN.Load(); got != 1 {
		t.Fatalf("failed %d messages, want 1 (timeout)", got)
	}
	if got := h.Metrics().Components["spout"].Failed; got != 1 {
		t.Fatalf("spout Failed metric = %d, want 1", got)
	}
}

// gateCtl coordinates the kill-the-downstream scenario: mid task
// blockTask blocks in Execute until release closes, and once poisoned its
// replacement instance fails Prepare, turning the task into a drain.
type gateCtl struct {
	blockTask int
	release   chan struct{}
	poisoned  atomic.Bool
}

type gateBolt struct {
	gate *gateCtl
	task int
	c    Collector
}

func (b *gateBolt) Prepare(ctx TopologyContext, c Collector) error {
	b.task = ctx.TaskIndex
	b.c = c
	if b.gate.poisoned.Load() && ctx.TaskIndex == b.gate.blockTask {
		return fmt.Errorf("poisoned prepare on task %d", ctx.TaskIndex)
	}
	return nil
}

func (b *gateBolt) Execute(t *Tuple) error {
	if t.IsTick() {
		return nil
	}
	if b.task == b.gate.blockTask {
		<-b.gate.release
	}
	b.c.Emit(Values{t.Value("n")})
	return nil
}

func (b *gateBolt) Cleanup() {}

func (b *gateBolt) DeclareOutputFields() map[string]Fields {
	return map[string]Fields{DefaultStream: {"n"}}
}

// runKillDownstream runs spout -> mid(2 tasks) -> sink, lets the input
// pile up on a blocked mid task, then crashes that task so its queue is
// drained without execution. It returns the distinct values the sink saw
// and the final metrics.
func runKillDownstream(t *testing.T, acking bool, n int, spoutFactory SpoutFactory) (map[interface{}]bool, *MetricsSnapshot) {
	t.Helper()
	gate := &gateCtl{blockTask: 0, release: make(chan struct{})}
	sink, mu, seen := newSink()
	tb := NewTopologyBuilder("t")
	tb.SetAcking(acking)
	tb.SetSpout("spout", spoutFactory, 1)
	tb.SetBolt("mid", func() Bolt { return &gateBolt{gate: gate} }, 2).Shuffle("spout")
	tb.SetBolt("sink", sink, 1).Shuffle("mid")
	topo, err := tb.Build()
	if err != nil {
		t.Fatal(err)
	}
	h := topo.Submit()
	// Wait until the spout has emitted everything: mid task 1 drains its
	// share, mid task 0 is blocked with its share queued behind the gate.
	deadline := time.Now().Add(10 * time.Second)
	for h.Metrics().Components["spout"].Emitted < int64(n) && time.Now().Before(deadline) {
		time.Sleep(time.Millisecond)
	}
	time.Sleep(20 * time.Millisecond) // let task 1 finish its half
	gate.poisoned.Store(true)
	if err := h.RestartTask("mid", 0); err != nil {
		t.Fatal(err)
	}
	close(gate.release) // current batch completes, then the restart fails
	h.Wait()
	mu.Lock()
	defer mu.Unlock()
	got := make(map[interface{}]bool)
	for _, s := range *seen {
		if !s.tick {
			got[s.value] = true
		}
	}
	return got, h.Metrics()
}

func TestKillDownstreamLosesDataWithoutAcking(t *testing.T) {
	const n = 400
	got, m := runKillDownstream(t, false, n, func() Spout { return &rangeSpout{n: n} })
	if m.Components["mid"].Dropped == 0 {
		t.Fatal("mid dropped no tuples; the crash scenario did not trigger")
	}
	if len(got) == n {
		t.Fatalf("sink saw all %d values despite dropped tuples; expected loss without acking", n)
	}
}

func TestKillDownstreamRecoversWithAcking(t *testing.T) {
	const n = 400
	sp := &ackRangeSpout{n: n}
	got, m := runKillDownstream(t, true, n, func() Spout { return sp })
	if m.Components["mid"].Dropped == 0 {
		t.Fatal("mid dropped no tuples; the crash scenario did not trigger")
	}
	if m.Components["spout"].Failed == 0 {
		t.Fatal("no roots failed back to the spout despite drops")
	}
	if sp.failedN.Load() == 0 {
		t.Fatal("spout saw no Fail callbacks")
	}
	if len(got) != n {
		t.Fatalf("sink saw %d distinct values, want %d (replay must recover drops)", len(got), n)
	}
	if sp.ackedN.Load() != n {
		t.Fatalf("spout acked %d messages, want %d", sp.ackedN.Load(), n)
	}
}
