package stream

import (
	"fmt"
	"sync"
	"sync/atomic"
	"testing"
	"time"
)

// ackKeyedSpout emits (key, seq) pairs anchored to their emission index,
// replays failures, and exhausts only once every message is acked — the
// shape of a real offset-committing spout. Used by the rebalance tests
// to prove zero loss and zero replay across live parallelism changes.
type ackKeyedSpout struct {
	keys   int
	perKey int

	next    int
	pending map[int]bool
	replayQ []int
	c       SpoutCollector

	ackedN  atomic.Int64
	failedN atomic.Int64
}

func (s *ackKeyedSpout) Open(_ TopologyContext, c SpoutCollector) error {
	s.c = c
	s.next = 0
	s.pending = make(map[int]bool)
	return nil
}

func (s *ackKeyedSpout) emit(id int) {
	key := fmt.Sprintf("k%d", id%s.keys)
	s.c.EmitAnchored(id, Values{key, id / s.keys})
}

func (s *ackKeyedSpout) NextTuple() bool {
	if len(s.replayQ) > 0 {
		id := s.replayQ[len(s.replayQ)-1]
		s.replayQ = s.replayQ[:len(s.replayQ)-1]
		s.emit(id)
		return true
	}
	if s.next < s.keys*s.perKey {
		id := s.next
		s.next++
		s.pending[id] = true
		s.emit(id)
		if s.next%64 == 0 {
			time.Sleep(100 * time.Microsecond) // keep the run long enough to rebalance mid-stream
		}
		return true
	}
	if len(s.pending) > 0 {
		time.Sleep(50 * time.Microsecond)
		return true
	}
	return false
}

func (s *ackKeyedSpout) Ack(msgID interface{}) {
	if id, ok := msgID.(int); ok && s.pending[id] {
		delete(s.pending, id)
		s.ackedN.Add(1)
	}
}

func (s *ackKeyedSpout) Fail(msgID interface{}) {
	if id, ok := msgID.(int); ok && s.pending[id] {
		s.failedN.Add(1)
		s.replayQ = append(s.replayQ, id)
	}
}

func (s *ackKeyedSpout) Close() {}

func (s *ackKeyedSpout) DeclareOutputFields() map[string]Fields {
	return map[string]Fields{DefaultStream: {"key", "seq"}}
}

// countingSink tallies executed data tuples per key.
type countingSink struct {
	mu     *sync.Mutex
	counts map[string]int
}

func (b *countingSink) Prepare(TopologyContext, Collector) error { return nil }
func (b *countingSink) Cleanup()                                 {}
func (b *countingSink) Execute(tp *Tuple) error {
	if tp.IsTick() {
		return nil
	}
	b.mu.Lock()
	b.counts[tp.Str("key")]++
	b.mu.Unlock()
	return nil
}

// TestRebalanceScalesLiveParallelism scales a fields-grouped bolt up and
// down repeatedly while an acking spout streams keyed tuples, and
// asserts the strongest property the protocol promises: every message
// acked, none failed (so none replayed), exact per-key counts at the
// sink, and component totals continuous across the task-set swaps. Run
// under -race by scripts/check.sh.
func TestRebalanceScalesLiveParallelism(t *testing.T) {
	const (
		keys   = 32
		perKey = 200
	)
	sp := &ackKeyedSpout{keys: keys, perKey: perKey}
	sink := &countingSink{mu: &sync.Mutex{}, counts: make(map[string]int)}

	tb := NewTopologyBuilder("rebalance")
	tb.SetAcking(true)
	tb.SetSpout("spout", func() Spout { return sp }, 1)
	tb.SetBolt("mid", func() Bolt {
		return &BoltFunc{
			Fn: func(tp *Tuple, c Collector) error {
				if tp.IsTick() {
					return nil
				}
				c.Emit(Values{tp.Value("key"), tp.Value("seq")})
				return nil
			},
			Output: Fields{"key", "seq"},
		}
	}, 2).Fields("spout", "key")
	tb.SetBolt("sink", func() Bolt { return sink }, 2).Fields("mid", "key")
	topo, err := tb.Build()
	if err != nil {
		t.Fatal(err)
	}
	h := topo.Submit()

	for i, n := range []int{5, 1, 6, 3} {
		time.Sleep(5 * time.Millisecond)
		if err := h.Rebalance("mid", n); err != nil {
			t.Fatalf("rebalance #%d to %d: %v", i, n, err)
		}
		if got := h.Parallelism("mid"); got != n {
			t.Fatalf("after rebalance #%d: parallelism = %d, want %d", i, got, n)
		}
	}
	if err := h.Rebalance("sink", 4); err != nil {
		t.Fatalf("rebalance sink: %v", err)
	}
	h.Wait()

	if got := sp.ackedN.Load(); got != keys*perKey {
		t.Fatalf("acked %d messages, want %d", got, keys*perKey)
	}
	if got := sp.failedN.Load(); got != 0 {
		t.Fatalf("%d messages failed during rebalances, want 0", got)
	}
	sink.mu.Lock()
	defer sink.mu.Unlock()
	if len(sink.counts) != keys {
		t.Fatalf("sink saw %d keys, want %d", len(sink.counts), keys)
	}
	for k, n := range sink.counts {
		if n != perKey {
			t.Fatalf("key %s: %d tuples, want exactly %d (lost or duplicated across rebalance)", k, n, perKey)
		}
	}
	m := h.Metrics()
	if got := m.Components["mid"].Executed; got != keys*perKey {
		t.Fatalf("mid executed %d across rebalances, want %d (metrics fold lost counts)", got, keys*perKey)
	}
	if got := m.Components["mid"].Tasks; got != 3 {
		t.Fatalf("mid Tasks = %d in snapshot, want 3", got)
	}
	if got := h.Rebalances(); got != 5 {
		t.Fatalf("Rebalances() = %d, want 5", got)
	}
}

// TestRebalanceValidation covers the control API's error paths.
func TestRebalanceValidation(t *testing.T) {
	sink, _, _ := newSink()
	tb := NewTopologyBuilder("t")
	tb.SetSpout("spout", func() Spout { return &rangeSpout{n: 100} }, 1)
	tb.SetBolt("sink", sink, 2).Fields("spout", "n")
	topo, err := tb.Build()
	if err != nil {
		t.Fatal(err)
	}
	h := topo.Submit()
	if err := h.Rebalance("nope", 2); err == nil {
		t.Fatal("rebalance of unknown component succeeded")
	}
	if err := h.Rebalance("spout", 2); err == nil {
		t.Fatal("rebalance of a spout succeeded")
	}
	if err := h.Rebalance("sink", 0); err == nil {
		t.Fatal("rebalance to 0 tasks succeeded")
	}
	if err := h.Rebalance("sink", NumPartitions+1); err == nil {
		t.Fatal("rebalance past the partition count succeeded")
	}
	if err := h.Rebalance("sink", 2); err != nil {
		t.Fatalf("no-op rebalance to current parallelism errored: %v", err)
	}
	h.Wait()
	if err := h.Rebalance("sink", 3); err == nil {
		t.Fatal("rebalance after shutdown succeeded")
	}
}

// burstSpout emits a spike of n keyed tuples as fast as the engine lets
// it and records when it finished handing them all over, so tests can
// tell a spout that stalled on a full pipeline from one that did not.
type burstSpout struct {
	n        int
	next     int
	c        SpoutCollector
	doneAt   *atomic.Int64
	emittedN atomic.Int64
}

func (s *burstSpout) Open(_ TopologyContext, c SpoutCollector) error {
	s.c = c
	s.next = 0
	return nil
}

func (s *burstSpout) NextTuple() bool {
	if s.next >= s.n {
		return false
	}
	s.c.Emit(Values{fmt.Sprintf("k%d", s.next%97), s.next})
	s.next++
	s.emittedN.Add(1)
	if s.next == s.n {
		s.doneAt.Store(time.Now().UnixNano())
	}
	return true
}

func (s *burstSpout) Close() {}

func (s *burstSpout) DeclareOutputFields() map[string]Fields {
	return map[string]Fields{DefaultStream: {"key", "n"}}
}

// burstTopology builds spout → slow sink with a shallow queue, the 10×
// spike shape: the spout produces instantly, the sink consumes at
// delay/tuple, so the pipeline must either stall the spout (blocking
// backpressure), throttle it (credit-based), or spill (overflow ring).
func burstTopology(t *testing.T, n int, delay time.Duration, configure func(tb *TopologyBuilder)) (*Topology, *burstSpout, *int64) {
	t.Helper()
	var executed int64
	sp := &burstSpout{n: n, doneAt: &atomic.Int64{}}
	tb := NewTopologyBuilder("burst")
	tb.SetMaxBatch(8)
	tb.SetQueueDepth(4)
	tb.SetBolt("slow", func() Bolt {
		return &BoltFunc{Fn: func(tp *Tuple, _ Collector) error {
			if !tp.IsTick() {
				time.Sleep(delay)
				atomic.AddInt64(&executed, 1)
			}
			return nil
		}}
	}, 1).Fields("spout", "key")
	tb.SetSpout("spout", func() Spout { return sp }, 1)
	if configure != nil {
		configure(tb)
	}
	topo, err := tb.Build()
	if err != nil {
		t.Fatal(err)
	}
	return topo, sp, &executed
}

// TestBurstBlocksWithoutOverflow pins down the baseline the overflow
// ring exists to fix: with a shallow queue and a slow consumer, the
// spout cannot finish emitting a spike until the consumer has chewed
// through most of it — ingest is coupled to the slowest stage.
func TestBurstBlocksWithoutOverflow(t *testing.T) {
	const n = 2000
	topo, sp, executed := burstTopology(t, n, 100*time.Microsecond, nil)
	start := time.Now()
	h := topo.Submit()
	h.Wait()
	total := time.Since(start)
	if got := atomic.LoadInt64(executed); got != n {
		t.Fatalf("executed %d tuples, want %d", got, n)
	}
	spoutDone := time.Duration(sp.doneAt.Load() - start.UnixNano())
	// The queue holds 4 batches × 8 tuples; everything beyond that had to
	// wait for the sink, so the spout finished in the run's final stretch.
	if spoutDone < total/2 {
		t.Fatalf("spout exhausted after %v of %v without overflow; expected blocking to couple it to the sink", spoutDone, total)
	}
}

// TestBurstAbsorbedByOverflow is the same spike with the disk ring on:
// the spout's spike lands in the overflow ring and ingest decouples
// from the slow consumer, with zero tuple loss.
func TestBurstAbsorbedByOverflow(t *testing.T) {
	const n = 2000
	topo, sp, executed := burstTopology(t, n, 100*time.Microsecond, func(tb *TopologyBuilder) {
		tb.SetOverflow(t.TempDir())
	})
	start := time.Now()
	h := topo.Submit()
	h.Wait()
	total := time.Since(start)
	if got := atomic.LoadInt64(executed); got != n {
		t.Fatalf("executed %d tuples, want %d (ring lost tuples)", got, n)
	}
	spilled, drained := h.OverflowStats()
	if spilled == 0 {
		t.Fatal("no batches spilled; the burst never reached the ring")
	}
	if spilled != drained {
		t.Fatalf("spilled %d batches but drained %d", spilled, drained)
	}
	spoutDone := time.Duration(sp.doneAt.Load() - start.UnixNano())
	if spoutDone > total/2 {
		t.Fatalf("spout exhausted after %v of %v with overflow on; expected ingest to decouple from the sink", spoutDone, total)
	}
}

// TestBackpressureThrottlesSpout checks the credit-based throttle: with
// water marks set, the spout pauses instead of blocking mid-batch, the
// trip counters record it, and every tuple still arrives.
func TestBackpressureThrottlesSpout(t *testing.T) {
	const n = 2000
	topo, _, executed := burstTopology(t, n, 50*time.Microsecond, func(tb *TopologyBuilder) {
		tb.SetBackpressure(3, 1)
	})
	h := topo.Submit()
	h.Wait()
	if got := atomic.LoadInt64(executed); got != n {
		t.Fatalf("executed %d tuples, want %d", got, n)
	}
	pauses, paused := h.BackpressureStats()
	if pauses == 0 {
		t.Fatal("backpressure never tripped under a 10x burst")
	}
	if paused <= 0 {
		t.Fatalf("pauses=%d but paused time is %v", pauses, paused)
	}
}

// TestOverflowPreservesLineage runs the spike with acking and the ring
// enabled together: anchored tuples survive the disk round-trip with
// their lineage intact, so every spout message is acked and none fail.
func TestOverflowPreservesLineage(t *testing.T) {
	const n = 1500
	sp := &ackRangeSpout{n: n}
	var executed atomic.Int64
	tb := NewTopologyBuilder("burst-acked")
	tb.SetMaxBatch(8)
	tb.SetQueueDepth(4)
	tb.SetAcking(true)
	tb.SetOverflow(t.TempDir())
	tb.SetSpout("spout", func() Spout { return sp }, 1)
	tb.SetBolt("slow", func() Bolt {
		return &BoltFunc{Fn: func(tp *Tuple, _ Collector) error {
			if !tp.IsTick() {
				time.Sleep(50 * time.Microsecond)
				executed.Add(1)
			}
			return nil
		}}
	}, 1).Fields("spout", "n")
	topo, err := tb.Build()
	if err != nil {
		t.Fatal(err)
	}
	h := topo.Submit()
	h.Wait()
	if got := sp.ackedN.Load(); got != n {
		t.Fatalf("acked %d messages, want %d", got, n)
	}
	if got := sp.failedN.Load(); got != 0 {
		t.Fatalf("%d messages failed, want 0", got)
	}
	if got := executed.Load(); got != n {
		t.Fatalf("executed %d tuples, want %d", got, n)
	}
	if spilled, _ := h.OverflowStats(); spilled == 0 {
		t.Fatal("no batches spilled; the acked burst never exercised the ring")
	}
}

// TestQueueDepthKnobValidation covers the builder knobs' error paths.
func TestQueueDepthKnobValidation(t *testing.T) {
	mk := func(configure func(tb *TopologyBuilder)) error {
		sink, _, _ := newSink()
		tb := NewTopologyBuilder("t")
		tb.SetSpout("spout", func() Spout { return &rangeSpout{n: 1} }, 1)
		tb.SetBolt("sink", sink, 1).Shuffle("spout")
		configure(tb)
		_, err := tb.Build()
		return err
	}
	if err := mk(func(tb *TopologyBuilder) { tb.SetQueueDepth(0) }); err == nil {
		t.Fatal("SetQueueDepth(0) validated")
	}
	if err := mk(func(tb *TopologyBuilder) { tb.SetAckerQueueDepth(-1) }); err == nil {
		t.Fatal("SetAckerQueueDepth(-1) validated")
	}
	if err := mk(func(tb *TopologyBuilder) { tb.SetBackpressure(2, 5) }); err == nil {
		t.Fatal("SetBackpressure(low >= high) validated")
	}
	if err := mk(func(tb *TopologyBuilder) { tb.SetOverflow("") }); err == nil {
		t.Fatal("SetOverflow(\"\") validated")
	}
	if err := mk(func(tb *TopologyBuilder) {
		tb.SetQueueDepth(16).SetAckerQueueDepth(64).SetBackpressure(8, 2)
	}); err != nil {
		t.Fatalf("valid knobs rejected: %v", err)
	}
}

// BenchmarkBurstOverflow measures the burst path end to end: a spike of
// b.N tuples through a shallow queue into a slow-ish sink with the disk
// ring enabled. Tracked in BENCH_PR6.json next to the steady-state
// pipeline numbers.
func BenchmarkBurstOverflow(b *testing.B) {
	var executed int64
	sp := &burstSpout{n: b.N, doneAt: &atomic.Int64{}}
	tb := NewTopologyBuilder("burst-bench")
	tb.SetMaxBatch(8)
	tb.SetQueueDepth(4)
	tb.SetOverflow(b.TempDir())
	tb.SetSpout("spout", func() Spout { return sp }, 1)
	tb.SetBolt("slow", func() Bolt {
		return &BoltFunc{Fn: func(tp *Tuple, _ Collector) error {
			if !tp.IsTick() {
				atomic.AddInt64(&executed, 1)
			}
			return nil
		}}
	}, 1).Fields("spout", "key")
	topo, err := tb.Build()
	if err != nil {
		b.Fatal(err)
	}
	b.ReportAllocs()
	b.ResetTimer()
	h := topo.Submit()
	h.Wait()
	b.StopTimer()
	if got := atomic.LoadInt64(&executed); got != int64(b.N) {
		b.Fatalf("executed %d tuples, want %d", got, b.N)
	}
}
