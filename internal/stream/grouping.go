package stream

import "math/rand"

// GroupingKind enumerates the stream groupings supported by the engine,
// mirroring the Storm groupings TencentRec uses ("stream grouping" in §5.2,
// field grouping in Fig. 7's XML).
type GroupingKind int

const (
	// ShuffleGrouping distributes tuples across tasks uniformly at random.
	ShuffleGrouping GroupingKind = iota
	// FieldsGrouping routes tuples by the hash of selected fields, so
	// every tuple with the same key reaches the same task. This is the
	// guarantee behind the paper's single-writer-per-item-pair claim.
	FieldsGrouping
	// GlobalGrouping sends every tuple to task 0.
	GlobalGrouping
	// AllGrouping replicates every tuple to all tasks.
	AllGrouping
)

// String returns the XML/config name of the grouping.
func (k GroupingKind) String() string {
	switch k {
	case ShuffleGrouping:
		return "shuffle"
	case FieldsGrouping:
		return "field"
	case GlobalGrouping:
		return "global"
	case AllGrouping:
		return "all"
	}
	return "unknown"
}

// Grouping describes how one subscription routes tuples to a bolt's tasks.
type Grouping struct {
	Kind GroupingKind
	// Fields selects the key fields for FieldsGrouping.
	Fields Fields
}

// NumPartitions is the fixed logical-partition count of the routing layer.
// Fields grouping hashes a key to one of these partitions, and a mutable
// per-component assignment table maps partitions to live tasks. The key →
// partition mapping never changes, so scaling a component up or down only
// rewrites the partition → task table; every key stays on a stable logical
// partition across rebalances (the Storm `rebalance` analog). Power of two
// so the partition pick is a mask, and — for task counts that divide it —
// (hash & mask) % n equals the pre-partition hash % n routing exactly.
const NumPartitions = 256

const partMask = NumPartitions - 1

// assignment is an immutable snapshot of one component's live tasks and
// its partition→task table. Emitters load it atomically per emit; a
// rebalance installs a fresh assignment only after the topology has
// drained, so no emitter ever holds buffered tuples routed under a
// superseded assignment (see runtime.rebalance).
type assignment struct {
	tasks []*task
	// parts maps logical partition → index into tasks. Only fields
	// grouping consults it; the other groupings derive destinations from
	// len(tasks) alone.
	parts [NumPartitions]int32
}

// newAssignment builds the round-robin partition table over tasks. With
// all of a component's tasks restarted fresh on rebalance (state lives in
// the external store), partition affinity carries no value, so the table
// simply spreads partitions as evenly as possible.
func newAssignment(tasks []*task) *assignment {
	a := &assignment{tasks: tasks}
	n := int32(len(tasks))
	for p := range a.parts {
		a.parts[p] = int32(p) % n
	}
	return a
}

// route returns the destination task indices for a tuple under an
// assignment. For AllGrouping the returned slice has length
// len(a.tasks); otherwise length 1. rng is the per-dispatcher random
// source used by shuffle grouping.
func (g Grouping) route(t *Tuple, a *assignment, rng *rand.Rand, scratch []int) []int {
	switch g.Kind {
	case FieldsGrouping:
		part := hashValues(t, g.Fields) & partMask
		return append(scratch, int(a.parts[part]))
	case GlobalGrouping:
		return append(scratch, 0)
	case AllGrouping:
		for i := range a.tasks {
			scratch = append(scratch, i)
		}
		return scratch
	default: // ShuffleGrouping
		return append(scratch, rng.Intn(len(a.tasks)))
	}
}
