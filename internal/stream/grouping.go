package stream

import "math/rand"

// GroupingKind enumerates the stream groupings supported by the engine,
// mirroring the Storm groupings TencentRec uses ("stream grouping" in §5.2,
// field grouping in Fig. 7's XML).
type GroupingKind int

const (
	// ShuffleGrouping distributes tuples across tasks uniformly at random.
	ShuffleGrouping GroupingKind = iota
	// FieldsGrouping routes tuples by the hash of selected fields, so
	// every tuple with the same key reaches the same task. This is the
	// guarantee behind the paper's single-writer-per-item-pair claim.
	FieldsGrouping
	// GlobalGrouping sends every tuple to task 0.
	GlobalGrouping
	// AllGrouping replicates every tuple to all tasks.
	AllGrouping
)

// String returns the XML/config name of the grouping.
func (k GroupingKind) String() string {
	switch k {
	case ShuffleGrouping:
		return "shuffle"
	case FieldsGrouping:
		return "field"
	case GlobalGrouping:
		return "global"
	case AllGrouping:
		return "all"
	}
	return "unknown"
}

// Grouping describes how one subscription routes tuples to a bolt's tasks.
type Grouping struct {
	Kind GroupingKind
	// Fields selects the key fields for FieldsGrouping.
	Fields Fields
}

// route returns the destination task indices for a tuple among n tasks.
// For AllGrouping the returned slice has length n; otherwise length 1.
// rng is the per-dispatcher random source used by shuffle grouping.
func (g Grouping) route(t *Tuple, n int, rng *rand.Rand, scratch []int) []int {
	switch g.Kind {
	case FieldsGrouping:
		return append(scratch, int(hashValues(t, g.Fields)%uint64(n)))
	case GlobalGrouping:
		return append(scratch, 0)
	case AllGrouping:
		for i := 0; i < n; i++ {
			scratch = append(scratch, i)
		}
		return scratch
	default: // ShuffleGrouping
		return append(scratch, rng.Intn(n))
	}
}
