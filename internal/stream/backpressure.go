package stream

import (
	"sync/atomic"

	"tencentrec/internal/obsv"
)

// backpressure is the credit-based spout throttle (enabled with
// TopologyBuilder.SetBackpressure). Spouts consult shouldPause between
// NextTuple polls: when the aggregate depth of all bolt input queues —
// plus the disk overflow ring's backlog, since spilled batches are queued
// work too — crosses the high-water mark, every spout parks; they resume
// once the depth drains to the low-water mark. The hysteresis gap keeps
// the throttle from oscillating at the boundary.
//
// This is the engine's analog of Storm's spout-throttling backpressure:
// instead of letting a full channel block an emitter mid-batch (which
// stalls the spout at an arbitrary point), the spout stops *polling for
// new input*, which leaves already-admitted tuples flowing and bounds
// total queued work at roughly high × maxBatch tuples.
type backpressure struct {
	rt   *runtime
	high int // trip threshold, in queued batches
	low  int // release threshold

	active atomic.Bool
	since  atomic.Int64 // obsv.Now() when the throttle last tripped

	pauses      atomic.Int64 // times the throttle tripped
	pausedNanos atomic.Int64 // cumulative paused time across trips
}

func newBackpressure(rt *runtime, high, low int) *backpressure {
	return &backpressure{rt: rt, high: high, low: low}
}

// depth is the total number of batches queued at bolt inputs plus the
// overflow ring backlog. It reads each component's live assignment, so a
// rebalance mid-read costs at most one stale sample.
func (bp *backpressure) depth() int {
	d := 0
	for _, ct := range bp.rt.comps {
		if ct.isSpout {
			continue
		}
		for _, tk := range ct.tasks() {
			d += len(tk.in)
		}
	}
	if bp.rt.ovf != nil {
		d += int(bp.rt.ovf.backlog())
	}
	return d
}

// shouldPause reports whether spouts should skip polling for input right
// now, updating the trip state with CAS so concurrent spouts agree on
// trip/release transitions and the counters record each trip once.
func (bp *backpressure) shouldPause() bool {
	if bp.active.Load() {
		if bp.depth() > bp.low {
			return true
		}
		if bp.active.CompareAndSwap(true, false) {
			bp.pausedNanos.Add(obsv.Now() - bp.since.Load())
		}
		return false
	}
	if bp.depth() < bp.high {
		return false
	}
	if bp.active.CompareAndSwap(false, true) {
		bp.since.Store(obsv.Now())
		bp.pauses.Add(1)
	}
	return true
}
