package stream

import (
	"context"
	"fmt"
	"math/rand"
	"sync"
	"sync/atomic"
	"time"
)

// Topology is a validated processing graph, ready to run.
// Build one with TopologyBuilder.
type Topology struct {
	// Name identifies the topology, e.g. "cf-test" in the paper's Fig. 7.
	Name string

	spouts []*spoutDecl
	bolts  []*boltDecl
	config map[string]interface{}
	order  []string // bolt names in topological order
}

// Components returns the names of all components, spouts first.
func (t *Topology) Components() []string {
	names := make([]string, 0, len(t.spouts)+len(t.bolts))
	for _, s := range t.spouts {
		names = append(names, s.name)
	}
	for _, b := range t.bolts {
		names = append(names, b.name)
	}
	return names
}

// Parallelism returns the task count of the named component, or 0.
func (t *Topology) Parallelism(name string) int {
	for _, s := range t.spouts {
		if s.name == name {
			return s.parallelism
		}
	}
	for _, b := range t.bolts {
		if b.name == name {
			return b.parallelism
		}
	}
	return 0
}

// inputQueueDepth bounds each task's input channel. Full channels exert
// backpressure on upstream emitters, which is how the engine survives the
// temporal burst events of §5.2 without unbounded memory growth.
const inputQueueDepth = 1024

type ctrlMsg int

const ctrlRestart ctrlMsg = iota

// edge is one compiled subscription: a (source, stream) pair routed to a
// destination bolt's tasks under a grouping.
type edge struct {
	group Grouping
	dest  string
	tasks []*task
}

type task struct {
	component string
	index     int
	isSpout   bool
	in        chan *Tuple
	ctrl      chan ctrlMsg
	rng       *rand.Rand
	rt        *runtime
	restarts  atomic.Int64
}

// runtime is a single execution of a topology.
type runtime struct {
	topo    *Topology
	tasks   map[string][]*task
	edges   map[string]map[string][]*edge // source -> stream -> edges
	fields  map[string]map[string]Fields  // source -> stream -> field names
	pending atomic.Int64
	metrics *Metrics
	onError func(component string, err error)

	spoutStop  chan struct{} // closed to ask spouts to stop early
	tickerStop chan struct{}
	tickerWG   sync.WaitGroup
	taskWG     sync.WaitGroup
	spoutWG    sync.WaitGroup
}

// collector routes a task's emissions to downstream tasks.
type collector struct {
	task     *task
	rt       *runtime
	routeBuf []int
}

// Emit implements Collector.
func (c *collector) Emit(values Values) { c.EmitTo(DefaultStream, values) }

// EmitTo implements Collector.
func (c *collector) EmitTo(stream string, values Values) {
	rt := c.rt
	fields := rt.fields[c.task.component][stream]
	t := &Tuple{Component: c.task.component, Stream: stream, Values: values, fields: fields}
	rt.metrics.component(c.task.component).Emitted.Add(1)
	edges := rt.edges[c.task.component][stream]
	for _, e := range edges {
		c.routeBuf = c.routeBuf[:0]
		c.routeBuf = e.group.route(t, len(e.tasks), c.task.rng, c.routeBuf)
		for _, i := range c.routeBuf {
			rt.pending.Add(1)
			rt.metrics.Transferred.Add(1)
			e.tasks[i].in <- t
		}
	}
}

func newRuntime(t *Topology, onError func(string, error)) *runtime {
	if onError == nil {
		onError = func(string, error) {}
	}
	rt := &runtime{
		topo:       t,
		tasks:      make(map[string][]*task),
		edges:      make(map[string]map[string][]*edge),
		fields:     make(map[string]map[string]Fields),
		metrics:    newMetrics(t),
		onError:    onError,
		spoutStop:  make(chan struct{}),
		tickerStop: make(chan struct{}),
	}
	seed := int64(1)
	mkTasks := func(name string, n int, isSpout bool) {
		ts := make([]*task, n)
		for i := range ts {
			ts[i] = &task{
				component: name,
				index:     i,
				isSpout:   isSpout,
				in:        make(chan *Tuple, inputQueueDepth),
				ctrl:      make(chan ctrlMsg, 4),
				rng:       rand.New(rand.NewSource(seed)),
				rt:        rt,
			}
			seed++
		}
		rt.tasks[name] = ts
	}
	for _, s := range t.spouts {
		mkTasks(s.name, s.parallelism, true)
		rt.fields[s.name] = s.outputs
	}
	for _, b := range t.bolts {
		mkTasks(b.name, b.parallelism, false)
		rt.fields[b.name] = b.outputs
	}
	for _, b := range t.bolts {
		for _, in := range b.inputs {
			m := rt.edges[in.source]
			if m == nil {
				m = make(map[string][]*edge)
				rt.edges[in.source] = m
			}
			m[in.stream] = append(m[in.stream], &edge{
				group: in.group,
				dest:  b.name,
				tasks: rt.tasks[b.name],
			})
		}
	}
	return rt
}

func (rt *runtime) ctx(name string, index, n int) TopologyContext {
	return TopologyContext{
		Component: name,
		TaskIndex: index,
		NumTasks:  n,
		Config:    rt.topo.config,
	}
}

// runSpoutTask drives one spout instance until exhaustion or stop.
func (rt *runtime) runSpoutTask(decl *spoutDecl, tk *task) {
	defer rt.spoutWG.Done()
	col := &collector{task: tk, rt: rt}
	sp := decl.factory()
	if err := sp.Open(rt.ctx(decl.name, tk.index, decl.parallelism), col); err != nil {
		rt.onError(decl.name, fmt.Errorf("open: %w", err))
		return
	}
	defer func() { sp.Close() }()
	for {
		select {
		case <-rt.spoutStop:
			return
		case m := <-tk.ctrl:
			if m == ctrlRestart {
				sp.Close()
				sp = decl.factory()
				tk.restarts.Add(1)
				if err := sp.Open(rt.ctx(decl.name, tk.index, decl.parallelism), col); err != nil {
					rt.onError(decl.name, fmt.Errorf("reopen: %w", err))
					return
				}
			}
		default:
			if !sp.NextTuple() {
				return
			}
		}
	}
}

// runBoltTask drives one bolt instance until its input channel closes.
func (rt *runtime) runBoltTask(decl *boltDecl, tk *task) {
	defer rt.taskWG.Done()
	col := &collector{task: tk, rt: rt}
	cm := rt.metrics.component(decl.name)
	b := decl.factory()
	if err := b.Prepare(rt.ctx(decl.name, tk.index, decl.parallelism), col); err != nil {
		rt.onError(decl.name, fmt.Errorf("prepare: %w", err))
		// Keep draining so upstream does not block forever.
		for range tk.in {
			rt.pending.Add(-1)
		}
		return
	}
	defer func() { b.Cleanup() }()
	for {
		select {
		case m := <-tk.ctrl:
			if m == ctrlRestart {
				// Simulated worker crash: the instance and all its
				// in-memory state are discarded; a fresh stateless
				// instance resumes from the same queue (§3.1, §3.3).
				b.Cleanup()
				b = decl.factory()
				tk.restarts.Add(1)
				if err := b.Prepare(rt.ctx(decl.name, tk.index, decl.parallelism), col); err != nil {
					rt.onError(decl.name, fmt.Errorf("re-prepare: %w", err))
					for range tk.in {
						rt.pending.Add(-1)
					}
					return
				}
			}
		case tup, ok := <-tk.in:
			if !ok {
				return
			}
			start := time.Now()
			if err := b.Execute(tup); err != nil {
				cm.Errors.Add(1)
				rt.onError(decl.name, err)
			}
			cm.Executed.Add(1)
			cm.ExecuteNanos.Add(time.Since(start).Nanoseconds())
			rt.pending.Add(-1)
		}
	}
}

// runTicker delivers tick tuples to every task of a bolt at its interval.
func (rt *runtime) runTicker(decl *boltDecl) {
	defer rt.tickerWG.Done()
	tick := &Tuple{Component: decl.name, Stream: TickStream}
	tm := time.NewTicker(decl.tick)
	defer tm.Stop()
	for {
		select {
		case <-rt.tickerStop:
			return
		case <-tm.C:
			for _, tk := range rt.tasks[decl.name] {
				rt.pending.Add(1)
				select {
				case tk.in <- tick:
				default:
					// Queue full: the task is saturated with real
					// tuples; skip this tick rather than block.
					rt.pending.Add(-1)
				}
			}
		}
	}
}

// flushTicks sends one final tick to each ticked bolt in topological order
// and waits for quiescence after each component, so that combiner bolts
// flush buffered aggregates downstream before shutdown.
func (rt *runtime) flushTicks() {
	byName := make(map[string]*boltDecl, len(rt.topo.bolts))
	for _, b := range rt.topo.bolts {
		byName[b.name] = b
	}
	for _, name := range rt.topo.order {
		decl := byName[name]
		if decl.tick <= 0 {
			continue
		}
		tick := &Tuple{Component: name, Stream: TickStream, Values: Values{"final"}}
		for _, tk := range rt.tasks[name] {
			rt.pending.Add(1)
			tk.in <- tick
		}
		rt.waitQuiescent()
	}
}

// waitQuiescent blocks until no tuples are queued or executing.
func (rt *runtime) waitQuiescent() {
	for rt.pending.Load() != 0 {
		time.Sleep(200 * time.Microsecond)
	}
}

// Run executes the topology until every spout reports exhaustion and all
// in-flight tuples have drained, then flushes tick-driven bolts and shuts
// down. Cancelling ctx stops the spouts early; the drain and flush still
// run so results are complete with respect to consumed input.
//
// Run returns the final metrics snapshot.
func (t *Topology) Run(ctx context.Context) (*MetricsSnapshot, error) {
	rt := newRuntime(t, nil)
	return rt.run(ctx)
}

// RunWithErrorHandler is Run with a callback invoked on component errors.
func (t *Topology) RunWithErrorHandler(ctx context.Context, onError func(component string, err error)) (*MetricsSnapshot, error) {
	rt := newRuntime(t, onError)
	return rt.run(ctx)
}

func (rt *runtime) run(ctx context.Context) (*MetricsSnapshot, error) {
	st := rt.start(ctx)
	st.Wait()
	return st.Metrics(), nil
}

// start launches all tasks and returns a handle for supervision.
func (rt *runtime) start(ctx context.Context) *RunningTopology {
	t := rt.topo
	for _, b := range t.bolts {
		for _, tk := range rt.tasks[b.name] {
			rt.taskWG.Add(1)
			go rt.runBoltTask(b, tk)
		}
		if b.tick > 0 {
			rt.tickerWG.Add(1)
			go rt.runTicker(b)
		}
	}
	for _, s := range t.spouts {
		for _, tk := range rt.tasks[s.name] {
			rt.spoutWG.Add(1)
			go rt.runSpoutTask(s, tk)
		}
	}
	h := &RunningTopology{rt: rt, done: make(chan struct{})}
	go func() {
		if ctx != nil {
			go func() {
				select {
				case <-ctx.Done():
					h.Stop()
				case <-h.done:
				}
			}()
		}
		rt.spoutWG.Wait()    // all spouts exhausted or stopped
		rt.waitQuiescent()   // all regular tuples drained
		close(rt.tickerStop) // no more interval ticks
		rt.tickerWG.Wait()
		rt.waitQuiescent()
		rt.flushTicks() // cascade final combiner flushes
		for _, name := range t.Components() {
			if !rt.tasks[name][0].isSpout {
				for _, tk := range rt.tasks[name] {
					close(tk.in)
				}
			}
		}
		rt.taskWG.Wait()
		close(h.done)
	}()
	return h
}

// RunningTopology is a handle to an executing topology: it supports
// waiting for completion, early stop, and supervisor-style fault
// injection (task restarts).
type RunningTopology struct {
	rt       *runtime
	done     chan struct{}
	stopOnce sync.Once
}

// Wait blocks until the topology has fully shut down.
func (h *RunningTopology) Wait() { <-h.done }

// Done returns a channel closed when the topology has shut down.
func (h *RunningTopology) Done() <-chan struct{} { return h.done }

// Stop asks the spouts to stop; processing drains and flushes as in a
// normal completion.
func (h *RunningTopology) Stop() {
	h.stopOnce.Do(func() { close(h.rt.spoutStop) })
}

// RestartTask simulates a worker crash-and-restart of one task of the
// named component: the current instance is discarded with all in-memory
// state and a fresh instance from the factory takes over the same queue.
// This reproduces the paper's fail-fast, state-free worker model (§3.1).
func (h *RunningTopology) RestartTask(component string, index int) error {
	tasks, ok := h.rt.tasks[component]
	if !ok {
		return fmt.Errorf("stream: unknown component %q", component)
	}
	if index < 0 || index >= len(tasks) {
		return fmt.Errorf("stream: component %q has no task %d", component, index)
	}
	select {
	case tasks[index].ctrl <- ctrlRestart:
		return nil
	case <-h.done:
		return fmt.Errorf("stream: topology already shut down")
	}
}

// Restarts reports how many times the given task has been restarted.
func (h *RunningTopology) Restarts(component string, index int) int64 {
	tasks, ok := h.rt.tasks[component]
	if !ok || index < 0 || index >= len(tasks) {
		return 0
	}
	return tasks[index].restarts.Load()
}

// Metrics returns a point-in-time snapshot of the topology metrics.
func (h *RunningTopology) Metrics() *MetricsSnapshot { return h.rt.metrics.snapshot() }

// Submit starts the topology without blocking and returns its handle.
// It is the engine's equivalent of submitting a topology to a Storm
// cluster; the topology "will process messages forever unless it is
// killed" (§5.1) — here, until Stop is called or the spouts exhaust.
func (t *Topology) Submit() *RunningTopology {
	rt := newRuntime(t, nil)
	return rt.start(nil)
}

// SubmitWithErrorHandler is Submit with an error callback.
func (t *Topology) SubmitWithErrorHandler(onError func(string, error)) *RunningTopology {
	rt := newRuntime(t, onError)
	return rt.start(nil)
}
