package stream

import (
	"context"
	"errors"
	"fmt"
	"math/rand"
	"sync"
	"sync/atomic"
	"time"

	"tencentrec/internal/obsv"
)

// ErrUnknownComponent reports an operation addressed to a component the
// topology does not contain. Callers (the HTTP control plane) match it
// with errors.Is to distinguish "no such component" from invalid
// arguments.
var ErrUnknownComponent = errors.New("stream: unknown component")

// Topology is a validated processing graph, ready to run.
// Build one with TopologyBuilder.
type Topology struct {
	// Name identifies the topology, e.g. "cf-test" in the paper's Fig. 7.
	Name string

	spouts     []*spoutDecl
	bolts      []*boltDecl
	config     map[string]interface{}
	order      []string // bolt names in topological order
	maxBatch   int
	linger     time.Duration
	acking     bool
	ackTimeout time.Duration
	ackForward AckForwarder
	queueDepth int
	ackerDepth int
	bpHigh     int // spout throttle high-water mark, in queued batches
	bpLow      int // spout throttle low-water mark
	overflow   string
	registry   *obsv.Registry
	tracer     *obsv.Tracer
}

// Components returns the names of all components, spouts first.
func (t *Topology) Components() []string {
	names := make([]string, 0, len(t.spouts)+len(t.bolts))
	for _, s := range t.spouts {
		names = append(names, s.name)
	}
	for _, b := range t.bolts {
		names = append(names, b.name)
	}
	return names
}

// Parallelism returns the task count of the named component, or 0.
func (t *Topology) Parallelism(name string) int {
	for _, s := range t.spouts {
		if s.name == name {
			return s.parallelism
		}
	}
	for _, b := range t.bolts {
		if b.name == name {
			return b.parallelism
		}
	}
	return 0
}

// DefaultQueueDepth bounds each task's input channel, in batches, unless
// overridden with TopologyBuilder.SetQueueDepth. Full channels exert
// backpressure on upstream emitters, which is how the engine survives the
// temporal burst events of §5.2 without unbounded memory growth (a task
// buffers at most depth × DefaultMaxBatch tuples).
const DefaultQueueDepth = 256

// DefaultMaxBatch is the per-destination flush threshold for the
// micro-batched transport: a destination buffer that reaches this many
// tuples is handed to the destination task as one channel send.
const DefaultMaxBatch = 64

// DefaultLinger bounds how long a spout-side buffer may hold tuples
// below the batch threshold before being flushed anyway, so trickle
// traffic still sees low delivery latency.
const DefaultLinger = time.Millisecond

// metricsFlushBatches bounds how many input batches a saturated bolt may
// process before folding its local counters into the shared metrics
// shards, so snapshots stay fresh under sustained load.
const metricsFlushBatches = 16

type ctrlMsg int

const ctrlRestart ctrlMsg = iota

// edge is one compiled subscription: a (source, stream) pair routed to a
// destination bolt's tasks under a grouping. The destination's live task
// set is reached through the component's atomic assignment, so a rebalance
// re-points every edge to the component at once.
type edge struct {
	group  Grouping
	src    string
	stream string
	id     int // index into runtime.edgeList, stable across the run
	dest   *componentTasks
}

// componentTasks is the mutable task set of one component. The assignment
// pointer is the single source of truth for the component's live tasks and
// its partition→task table; emitters, tickers and the control plane all
// load it atomically.
type componentTasks struct {
	name    string
	isSpout bool
	assign  atomic.Pointer[assignment]
}

func (ct *componentTasks) tasks() []*task { return ct.assign.Load().tasks }

type task struct {
	component string
	index     int
	isSpout   bool
	in        chan []*Tuple
	ctrl      chan ctrlMsg
	done      chan struct{} // closed when the task goroutine has exited
	rng       *rand.Rand
	rt        *runtime
	restarts  atomic.Int64

	// ackBox is the spout task's mailbox of resolved roots, filled by
	// the acker goroutine and drained between NextTuple calls.
	ackMu  sync.Mutex
	ackBox []ackResult
}

// runtime is a single execution of a topology.
type runtime struct {
	topo     *Topology
	comps    map[string]*componentTasks
	edges    map[string]map[string][]*edge // source -> stream -> edges
	edgeList []*edge                       // all edges by id, for overflow replay
	fields   map[string]map[string]Fields  // source -> stream -> field names
	pending  atomic.Int64
	metrics  *Metrics
	onError  func(component string, err error)
	maxBatch int
	linger   time.Duration
	ak       *acker        // nil unless the topology was built with SetAcking
	tracer   *obsv.Tracer  // nil unless the topology was built with SetTracer
	bp       *backpressure // nil unless built with SetBackpressure
	ovf      *overflow     // nil unless built with SetOverflow
	registry *obsv.Registry

	// Rebalance machinery (see rebalance): paused gates the spout loops,
	// pausedSpouts/activeSpouts let the control plane wait until every
	// live spout has flushed and parked, rebalanceMu serializes rebalances
	// against each other and against shutdown, and tickGate excludes the
	// tick dispatchers during the task-set swap so a ticker never sends to
	// a just-closed input channel.
	paused       atomic.Bool
	pausedSpouts atomic.Int64
	activeSpouts atomic.Int64
	rebalanceMu  sync.Mutex
	closed       bool // set under rebalanceMu once shutdown begins
	tickGate     sync.RWMutex
	rebalances   atomic.Int64
	gaugeMax     map[string]int // per component, queue gauges registered so far
	seedSeq      atomic.Int64   // task rng seed sequence

	spoutStop  chan struct{} // closed to ask spouts to stop early
	tickerStop chan struct{}
	tickerWG   sync.WaitGroup
	taskWG     sync.WaitGroup
	spoutWG    sync.WaitGroup
}

// taskList returns the named component's current live tasks.
func (rt *runtime) taskList(name string) []*task { return rt.comps[name].tasks() }

// edgeBuf accumulates routed tuples for one edge, one buffer per
// destination task, until a flush hands the whole batch over. It caches
// the destination assignment it was sized for; sync adopts a new one.
type edgeBuf struct {
	edge *edge
	a    *assignment
	bufs [][]*Tuple
}

// sync adopts the destination's current assignment. A rebalance only
// installs a new assignment while the topology is drained, which — by the
// enqueue-before-ack invariant (DESIGN.md §10) — implies every collector
// buffer is empty, so dropping the old buffers loses nothing and no send
// to a retired task's closed channel can ever happen.
func (eb *edgeBuf) sync() {
	if a := eb.edge.dest.assign.Load(); a != eb.a {
		eb.a = a
		eb.bufs = make([][]*Tuple, len(a.tasks))
	}
}

// streamOut is a component's compiled output for one stream id.
type streamOut struct {
	fields Fields
	edges  []*edgeBuf
}

// collector routes a task's emissions to downstream tasks in
// micro-batches. It also carries the task's batched bookkeeping: local
// metric counters folded into the task's metrics shard at flush time,
// and the executed-tuple acks subtracted from the runtime's pending
// count once the emissions they produced have been enqueued.
//
// Flush rules (see DESIGN.md): a destination buffer flushes when it
// reaches maxBatch tuples; everything flushes when a bolt empties its
// input queue, when a spout polls idle or exceeds the linger deadline,
// and on every task exit path.
type collector struct {
	task     *task
	rt       *runtime
	sm       *metricsShard
	maxBatch int
	outs     map[string]*streamOut
	list     []*streamOut
	routeBuf []int
	spanBuf  []int // routeBuf prefix lengths per edge, multi-edge emits
	buffered int   // tuples currently sitting in edge buffers

	// Acking state (see ack.go). anchorOK marks a spout collector whose
	// spout can receive Ack/Fail; curRoot/curXor are the lineage root
	// and id accumulator of the tuple currently being emitted for.
	ak       *acker
	anchorOK bool
	curRoot  uint64
	curXor   uint64
	ackBuf   []ackerMsg

	// Tracing state, mirroring the curRoot anchoring pattern: tracer is
	// set on spout collectors only and samples new traces at emission;
	// curTrace is the trace of the tuple a bolt is currently executing,
	// inherited by everything it emits.
	tracer   *obsv.Tracer
	curTrace *obsv.Trace

	// Overflow state: ovf is set on spout collectors of topologies built
	// with SetOverflow; spilling marks the collector as routing batches
	// through the disk ring until the drainer has caught up, preserving
	// FIFO order relative to already-spilled batches.
	ovf      *overflow
	spilling bool

	// local counters, folded into sm by flushAll
	emitted     int64
	transferred int64
	executed    int64
	errors      int64
	acked       int64 // executed input tuples not yet subtracted from pending

	lastFlush time.Time
}

func newCollector(tk *task, rt *runtime) *collector {
	c := &collector{
		task:      tk,
		rt:        rt,
		sm:        rt.metrics.shard(tk.component, tk.index),
		maxBatch:  rt.maxBatch,
		outs:      make(map[string]*streamOut),
		ak:        rt.ak,
		lastFlush: time.Now(),
	}
	if tk.isSpout {
		c.tracer = rt.tracer
		c.ovf = rt.ovf
	}
	for stream, fields := range rt.fields[tk.component] {
		so := &streamOut{fields: fields}
		for _, e := range rt.edges[tk.component][stream] {
			a := e.dest.assign.Load()
			so.edges = append(so.edges, &edgeBuf{edge: e, a: a, bufs: make([][]*Tuple, len(a.tasks))})
		}
		c.outs[stream] = so
		c.list = append(c.list, so)
	}
	return c
}

// Emit implements Collector.
func (c *collector) Emit(values Values) { c.EmitTo(DefaultStream, values) }

// EmitTo implements Collector.
func (c *collector) EmitTo(stream string, values Values) { c.emitTo(stream, values) }

func (c *collector) emitTo(stream string, values Values) {
	c.emitted++
	out := c.outs[stream]
	if out == nil || len(out.edges) == 0 {
		return // no subscribers: dropped, as before
	}
	// A bolt's emissions inherit the trace of the tuple being executed;
	// a spout emission is where sampling happens (tracer is set on spout
	// collectors only — the unsampled case costs one atomic increment).
	tr := c.curTrace
	if tr == nil && c.tracer != nil {
		tr = c.tracer.Sample()
	}
	if c.curRoot != 0 {
		c.emitAnchoredTuples(out, stream, values, tr)
		return
	}
	t := getTuple(c.task.component, stream, values, out.fields)
	if tr != nil {
		t.trace, t.traceEnq = tr, obsv.Now()
	}
	if len(out.edges) == 1 {
		eb := out.edges[0]
		eb.sync()
		c.routeBuf = eb.edge.group.route(t, eb.a, c.task.rng, c.routeBuf[:0])
		t.refs.Store(int32(len(c.routeBuf)))
		for _, i := range c.routeBuf {
			c.deliver(eb, i, t)
		}
		return
	}
	// Multi-edge emit: route against every edge before the first append,
	// because an append can flush a full buffer and the tuple must not be
	// released downstream while deliveries are still being counted.
	c.routeBuf = c.routeBuf[:0]
	c.spanBuf = c.spanBuf[:0]
	for _, eb := range out.edges {
		eb.sync()
		c.routeBuf = eb.edge.group.route(t, eb.a, c.task.rng, c.routeBuf)
		c.spanBuf = append(c.spanBuf, len(c.routeBuf))
	}
	t.refs.Store(int32(len(c.routeBuf)))
	pos := 0
	for k, eb := range out.edges {
		for _, i := range c.routeBuf[pos:c.spanBuf[k]] {
			c.deliver(eb, i, t)
		}
		pos = c.spanBuf[k]
	}
}

// emitAnchoredTuples is the anchored emit path: instead of sharing one
// pooled tuple across destinations, every delivery gets its own clone
// carrying the lineage root and a fresh XOR id, because per-delivery ids
// are what the acking protocol counts. The Values slice is shared across
// clones — downstream tasks only read it. Routing runs against a stack
// probe tuple before any append, for the same release-safety reason as
// the multi-edge path above.
func (c *collector) emitAnchoredTuples(out *streamOut, stream string, values Values, tr *obsv.Trace) {
	probe := Tuple{Component: c.task.component, Stream: stream, Values: values, fields: out.fields}
	c.routeBuf = c.routeBuf[:0]
	c.spanBuf = c.spanBuf[:0]
	for _, eb := range out.edges {
		eb.sync()
		c.routeBuf = eb.edge.group.route(&probe, eb.a, c.task.rng, c.routeBuf)
		c.spanBuf = append(c.spanBuf, len(c.routeBuf))
	}
	var enq int64
	if tr != nil {
		enq = obsv.Now()
	}
	pos := 0
	for k, eb := range out.edges {
		for _, i := range c.routeBuf[pos:c.spanBuf[k]] {
			t := getTuple(c.task.component, stream, values, out.fields)
			t.root = c.curRoot
			t.ackID = c.newAckID()
			t.refs.Store(1)
			if tr != nil {
				t.trace, t.traceEnq = tr, enq
			}
			c.curXor ^= t.ackID
			c.deliver(eb, i, t)
		}
		pos = c.spanBuf[k]
	}
}

// deliver appends one routed tuple to a destination buffer, flushing the
// buffer if it reached the batch threshold.
func (c *collector) deliver(eb *edgeBuf, i int, t *Tuple) {
	c.transferred++
	eb.bufs[i] = append(eb.bufs[i], t)
	c.buffered++
	if len(eb.bufs[i]) >= c.maxBatch {
		c.flushDest(eb, i)
	}
}

// flushDest hands one destination's buffered tuples to its task as a
// single batch. Pending is bumped once per batch, before the send (and
// before a spill — spilled tuples are still in flight), so quiescence
// detection never undercounts in-flight tuples.
//
// On a spout collector with the overflow ring enabled, a send that would
// block diverts the batch to the disk ring instead, and the collector
// stays in spill mode — all subsequent batches take the ring — until the
// drainer has delivered everything, which preserves delivery order per
// destination (the ring is FIFO, and a blocked ring-drainer send enqueues
// ahead of any later direct send on the same channel).
func (c *collector) flushDest(eb *edgeBuf, i int) {
	buf := eb.bufs[i]
	if len(buf) == 0 {
		return
	}
	eb.bufs[i] = make([]*Tuple, 0, c.maxBatch)
	c.buffered -= len(buf)
	c.rt.pending.Add(int64(len(buf)))
	if c.ovf != nil {
		if c.spilling {
			if !c.ovf.empty() {
				if c.ovf.spill(eb.edge, i, buf) {
					return
				}
			} else {
				c.spilling = false
			}
		}
		select {
		case eb.a.tasks[i].in <- buf:
			return
		default:
			if c.ovf.spill(eb.edge, i, buf) {
				c.spilling = true
				return
			}
			// Unencodable values: fall through to the blocking send.
		}
	}
	eb.a.tasks[i].in <- buf
}

// flushAll drains every destination buffer, folds the local metric
// counters into the task's shard, and acknowledges executed input
// tuples. The order matters: emissions enter downstream queues (pending
// += n) before their causes are acknowledged (pending -= acked), so the
// pending count can only reach zero when no tuple or its consequences
// are anywhere in flight.
func (c *collector) flushAll() {
	if c.buffered > 0 {
		for _, so := range c.list {
			for _, eb := range so.edges {
				for i := range eb.bufs {
					if len(eb.bufs[i]) > 0 {
						c.flushDest(eb, i)
					}
				}
			}
		}
	}
	if c.emitted != 0 {
		c.sm.emitted.Add(c.emitted)
		c.emitted = 0
	}
	if c.transferred != 0 {
		c.sm.transferred.Add(c.transferred)
		c.transferred = 0
	}
	if c.executed != 0 {
		c.sm.executed.Add(c.executed)
		c.executed = 0
	}
	if c.errors != 0 {
		c.sm.errors.Add(c.errors)
		c.errors = 0
	}
	if c.acked != 0 {
		c.rt.pending.Add(-c.acked)
		c.acked = 0
	}
	if len(c.ackBuf) > 0 {
		c.flushAcks()
	}
	c.lastFlush = time.Now()
}

func newRuntime(t *Topology, onError func(string, error)) *runtime {
	if onError == nil {
		onError = func(string, error) {}
	}
	rt := &runtime{
		topo:       t,
		comps:      make(map[string]*componentTasks),
		edges:      make(map[string]map[string][]*edge),
		fields:     make(map[string]map[string]Fields),
		metrics:    newMetrics(t),
		onError:    onError,
		maxBatch:   t.maxBatch,
		linger:     t.linger,
		gaugeMax:   make(map[string]int),
		spoutStop:  make(chan struct{}),
		tickerStop: make(chan struct{}),
	}
	if rt.maxBatch <= 0 {
		rt.maxBatch = DefaultMaxBatch
	}
	if rt.linger <= 0 {
		rt.linger = DefaultLinger
	}
	if t.acking {
		rt.ak = newAcker(rt, t.ackTimeout, t.ackerDepth)
		rt.ak.forward = t.ackForward
	}
	rt.tracer = t.tracer
	if t.bpHigh > 0 {
		rt.bp = newBackpressure(rt, t.bpHigh, t.bpLow)
	}
	if t.overflow != "" {
		ovf, err := openOverflow(rt, t.overflow)
		if err != nil {
			// The ring is an optimization; without it sends fall back to
			// blocking, which is the engine's pre-overflow behavior.
			onError("__overflow", err)
		} else {
			rt.ovf = ovf
		}
	}
	mkTasks := func(name string, n int, isSpout bool) {
		ct := &componentTasks{name: name, isSpout: isSpout}
		ct.assign.Store(newAssignment(rt.newTasks(name, n, isSpout, 0)))
		rt.comps[name] = ct
	}
	for _, s := range t.spouts {
		mkTasks(s.name, s.parallelism, true)
		rt.fields[s.name] = s.outputs
	}
	for _, b := range t.bolts {
		mkTasks(b.name, b.parallelism, false)
		rt.fields[b.name] = b.outputs
	}
	for _, b := range t.bolts {
		for _, in := range b.inputs {
			m := rt.edges[in.source]
			if m == nil {
				m = make(map[string][]*edge)
				rt.edges[in.source] = m
			}
			e := &edge{
				group:  in.group,
				src:    in.source,
				stream: in.stream,
				id:     len(rt.edgeList),
				dest:   rt.comps[b.name],
			}
			m[in.stream] = append(m[in.stream], e)
			rt.edgeList = append(rt.edgeList, e)
		}
	}
	if t.registry != nil {
		rt.registerObservability(t.registry)
	}
	return rt
}

// newTasks allocates n fresh task structs for a component, numbered from
// firstIndex (always 0 today; kept explicit for clarity at call sites).
// Each task's private rng is seeded from the runtime's seed sequence, so
// rebalance-spawned generations keep distinct streams.
func (rt *runtime) newTasks(name string, n int, isSpout bool, firstIndex int) []*task {
	depth := rt.topo.queueDepth
	if depth <= 0 {
		depth = DefaultQueueDepth
	}
	ts := make([]*task, n)
	for i := range ts {
		ts[i] = &task{
			component: name,
			index:     firstIndex + i,
			isSpout:   isSpout,
			in:        make(chan []*Tuple, depth),
			ctrl:      make(chan ctrlMsg, 4),
			done:      make(chan struct{}),
			rng:       rand.New(rand.NewSource(rt.seedSeq.Add(1))),
			rt:        rt,
		}
	}
	return ts
}

func (rt *runtime) ctx(name string, index, n int) TopologyContext {
	return TopologyContext{
		Component: name,
		TaskIndex: index,
		NumTasks:  n,
		Config:    rt.topo.config,
		Acking:    rt.ak != nil,
	}
}

// runSpoutTask drives one spout instance until exhaustion or stop.
func (rt *runtime) runSpoutTask(decl *spoutDecl, tk *task) {
	defer rt.spoutWG.Done()
	rt.activeSpouts.Add(1)
	defer rt.activeSpouts.Add(-1)
	col := newCollector(tk, rt)
	defer col.flushAll() // buffered emissions leave on every return path
	sp := decl.factory()
	if err := sp.Open(rt.ctx(decl.name, tk.index, decl.parallelism), col); err != nil {
		rt.onError(decl.name, fmt.Errorf("open: %w", err))
		return
	}
	defer func() { sp.Close() }()
	as, canAck := sp.(AckingSpout)
	col.anchorOK = rt.ak != nil && canAck && rt.ak.forward == nil
	var ackScratch []ackResult
	for {
		select {
		case <-rt.spoutStop:
			return
		case m := <-tk.ctrl:
			if m == ctrlRestart {
				col.flushAll() // the old instance's emissions leave first
				sp.Close()
				sp = decl.factory()
				tk.restarts.Add(1)
				if err := sp.Open(rt.ctx(decl.name, tk.index, decl.parallelism), col); err != nil {
					rt.onError(decl.name, fmt.Errorf("reopen: %w", err))
					return
				}
				as, canAck = sp.(AckingSpout)
				col.anchorOK = rt.ak != nil && canAck && rt.ak.forward == nil
			}
		default:
			if rt.paused.Load() {
				// A rebalance is draining the topology: flush everything,
				// report this spout parked, and idle until resumed. The
				// loop re-enters the select each iteration so stop and
				// restart signals are still honored while parked.
				col.flushAll()
				rt.pausedSpouts.Add(1)
				for rt.paused.Load() {
					select {
					case <-rt.spoutStop:
						rt.pausedSpouts.Add(-1)
						return
					default:
						time.Sleep(50 * time.Microsecond)
					}
				}
				rt.pausedSpouts.Add(-1)
				continue
			}
			if rt.bp != nil && rt.bp.shouldPause() {
				// Downstream queues are over the high-water mark: stop
				// polling for new input until they drain to the low-water
				// mark. Flushing first keeps already-emitted tuples moving.
				col.flushAll()
				time.Sleep(200 * time.Microsecond)
				continue
			}
			if col.anchorOK {
				// Deliver resolved roots before polling, so a spout that
				// replays failed messages sees the failure promptly and a
				// spout waiting on outstanding messages can exhaust.
				ackScratch = tk.takeAckResults(ackScratch[:0])
				for _, r := range ackScratch {
					if r.failed {
						as.Fail(r.msgID)
					} else {
						as.Ack(r.msgID)
					}
				}
			}
			e0 := col.emitted
			if !sp.NextTuple() {
				return
			}
			// Idle poll (nothing emitted) or linger expiry: hand over
			// whatever is buffered so trickle traffic is not delayed.
			// Local counters are folded too even when the buffers are
			// empty (threshold flushes may have drained them), so
			// metric readers like System.Drain never see an idle spout
			// with emissions unaccounted for. Buffered acker updates
			// (anchoring messages) leave on the same schedule.
			if (col.buffered > 0 || col.emitted != 0 || len(col.ackBuf) > 0) && (col.emitted == e0 || time.Since(col.lastFlush) >= rt.linger) {
				col.flushAll()
			}
		}
	}
}

// execBatch runs the bolt over one received batch, timing each tuple's
// Execute into the task's latency histogram and releasing each tuple to
// the free list after execution. Timing is chained — the clock is read
// once per tuple, each read serving as the previous tuple's end and the
// next one's start — so per-tuple percentiles cost one monotonic clock
// read plus a lock-free histogram observe per tuple.
func (rt *runtime) execBatch(decl *boltDecl, b Bolt, col *collector, batch []*Tuple) {
	if rt.ak != nil {
		rt.execBatchAcked(decl, b, col, batch)
	} else {
		now := obsv.Now()
		for _, tup := range batch {
			tr := tup.trace
			col.curTrace = tr
			err := b.Execute(tup)
			end := obsv.Now()
			col.sm.exec.Observe(end - now)
			if tr != nil {
				tr.AddSpan(col.task.component, tup.traceEnq, now, end)
			}
			if err != nil {
				col.errors++
				rt.onError(decl.name, err)
			}
			tup.release()
			now = end
		}
		col.curTrace = nil
	}
	col.executed += int64(len(batch))
	col.acked += int64(len(batch))
}

// execBatchAcked is execBatch with lineage bookkeeping: around each
// anchored tuple's Execute, the collector accumulates the ids of emitted
// children, and the input's id plus its children's ids are acked as one
// update (or the root failed, if Execute errored) on the batch's flush.
func (rt *runtime) execBatchAcked(decl *boltDecl, b Bolt, col *collector, batch []*Tuple) {
	now := obsv.Now()
	for _, tup := range batch {
		root, id := tup.root, tup.ackID
		if root != 0 {
			col.curRoot, col.curXor = root, id
		}
		tr := tup.trace
		col.curTrace = tr
		err := b.Execute(tup)
		end := obsv.Now()
		col.sm.exec.Observe(end - now)
		if tr != nil {
			tr.AddSpan(col.task.component, tup.traceEnq, now, end)
		}
		if root != 0 {
			xor := col.curXor
			col.curRoot = 0
			if err != nil {
				col.pushAckerMsg(ackerMsg{kind: ackerFail, root: root})
			} else {
				col.pushAckerMsg(ackerMsg{kind: ackerAck, root: root, xor: xor})
			}
		}
		if err != nil {
			col.errors++
			rt.onError(decl.name, err)
		}
		tup.release()
		now = end
	}
	col.curTrace = nil
}

// dropBatch disposes of one unexecuted batch: tuples are released, the
// dropped data tuples are counted per component, and with acking enabled
// each anchored tuple fails its lineage root so the spout replays the
// message instead of losing it. Fails leave immediately, not on some
// larger schedule: the spouts replaying them are what lets the topology
// drain and shut down.
func (rt *runtime) dropBatch(tk *task, batch []*Tuple) {
	dropped := 0
	var fails []ackerMsg
	for _, tup := range batch {
		if !tup.IsTick() {
			dropped++
			if rt.ak != nil && tup.root != 0 {
				fails = append(fails, ackerMsg{kind: ackerFail, root: tup.root})
			}
		}
		tup.release()
	}
	if len(fails) > 0 {
		rt.ak.in <- fails
	}
	if dropped > 0 {
		rt.metrics.component(tk.component).dropped.Add(int64(dropped))
	}
	rt.pending.Add(-int64(len(batch)))
}

// drainInput unblocks upstream senders after a failed Prepare: batches
// are consumed and dropped without execution until the queue closes.
func (rt *runtime) drainInput(tk *task) {
	for batch := range tk.in {
		rt.dropBatch(tk, batch)
	}
}

// restartBolt swaps in a fresh bolt instance after simulated worker
// failure: the instance and all its in-memory state are discarded; a
// fresh stateless instance resumes from the same queue (§3.1, §3.3).
// On a failed re-Prepare the caller must dispose of any batch it holds
// and then drain the queue; restartBolt cannot drain itself, because a
// batch still in the caller's hands would keep the topology from ever
// quiescing.
func (rt *runtime) restartBolt(decl *boltDecl, tk *task, col *collector, b Bolt) (Bolt, bool) {
	b.Cleanup()
	nb := decl.factory()
	tk.restarts.Add(1)
	if err := nb.Prepare(rt.ctx(decl.name, tk.index, len(rt.taskList(decl.name))), col); err != nil {
		rt.onError(decl.name, fmt.Errorf("re-prepare: %w", err))
		col.flushAll() // do not strand pre-crash emissions or acks
		return nil, false
	}
	return nb, true
}

// runBoltTask drives one bolt instance until its input channel closes.
// It iterates whole batches per channel receive and keeps consuming as
// long as input is immediately available, flushing its own emissions
// when the queue momentarily empties.
func (rt *runtime) runBoltTask(decl *boltDecl, tk *task) {
	defer rt.taskWG.Done()
	defer close(tk.done) // after the flushAll below: retirement waits on it
	col := newCollector(tk, rt)
	defer col.flushAll()
	b := decl.factory()
	if err := b.Prepare(rt.ctx(decl.name, tk.index, len(rt.taskList(decl.name))), col); err != nil {
		rt.onError(decl.name, fmt.Errorf("prepare: %w", err))
		rt.drainInput(tk)
		return
	}
	defer func() {
		if b != nil { // nil after a failed restart; the old instance was cleaned up
			b.Cleanup()
		}
	}()
	for {
		select {
		case m := <-tk.ctrl:
			if m == ctrlRestart {
				var ok bool
				if b, ok = rt.restartBolt(decl, tk, col, b); !ok {
					rt.drainInput(tk)
					return
				}
			}
		case batch, ok := <-tk.in:
			if !ok {
				return
			}
			streak := 0
			for batch != nil {
				// Poll for a restart between batches so fault injection
				// is not starved while the queue stays busy.
				select {
				case m := <-tk.ctrl:
					if m == ctrlRestart {
						var okr bool
						if b, okr = rt.restartBolt(decl, tk, col, b); !okr {
							rt.dropBatch(tk, batch) // the batch in hand is dropped too
							rt.drainInput(tk)
							return
						}
					}
				default:
				}
				rt.execBatch(decl, b, col, batch)
				if streak++; streak >= metricsFlushBatches {
					col.flushAll()
					streak = 0
				}
				select {
				case batch, ok = <-tk.in:
					if !ok {
						return // defer flushes metrics; buffers are empty at close
					}
				default:
					batch = nil
				}
			}
			col.flushAll()
		}
	}
}

// runTicker delivers tick tuples to every task of a bolt at its interval.
func (rt *runtime) runTicker(decl *boltDecl) {
	defer rt.tickerWG.Done()
	cm := rt.metrics.component(decl.name)
	// One shared single-tuple batch: consumers only read it and the tick
	// tuple is unpooled, so reuse across tasks and intervals is safe.
	batch := []*Tuple{{Component: decl.name, Stream: TickStream}}
	tm := time.NewTicker(decl.tick)
	defer tm.Stop()
	for {
		select {
		case <-rt.tickerStop:
			return
		case <-tm.C:
			// tickGate excludes the rebalance task-set swap, so the task
			// list loaded here cannot have its channels closed mid-loop.
			rt.tickGate.RLock()
			for _, tk := range rt.taskList(decl.name) {
				rt.pending.Add(1)
				select {
				case tk.in <- batch:
				default:
					// Queue full: the task is saturated with real
					// tuples; skip this tick rather than block.
					rt.pending.Add(-1)
					cm.ticksSkipped.Add(1)
				}
			}
			rt.tickGate.RUnlock()
		}
	}
}

// flushTicks sends one final tick to each ticked bolt in topological order
// and waits for quiescence after each component, so that combiner bolts
// flush buffered aggregates downstream before shutdown.
func (rt *runtime) flushTicks() {
	byName := make(map[string]*boltDecl, len(rt.topo.bolts))
	for _, b := range rt.topo.bolts {
		byName[b.name] = b
	}
	for _, name := range rt.topo.order {
		decl := byName[name]
		if decl.tick <= 0 {
			continue
		}
		batch := []*Tuple{{Component: name, Stream: TickStream, Values: Values{"final"}}}
		for _, tk := range rt.taskList(name) {
			rt.pending.Add(1)
			tk.in <- batch
		}
		rt.waitQuiescent()
	}
}

// waitQuiescent blocks until no tuples are queued or executing, backing
// off exponentially from 10µs to 2ms so an idle topology does not spin.
func (rt *runtime) waitQuiescent() {
	const maxBackoff = 2 * time.Millisecond
	d := 10 * time.Microsecond
	for rt.pending.Load() != 0 {
		time.Sleep(d)
		if d < maxBackoff {
			d *= 2
			if d > maxBackoff {
				d = maxBackoff
			}
		}
	}
}

// Run executes the topology until every spout reports exhaustion and all
// in-flight tuples have drained, then flushes tick-driven bolts and shuts
// down. Cancelling ctx stops the spouts early; the drain and flush still
// run so results are complete with respect to consumed input.
//
// Run returns the final metrics snapshot.
func (t *Topology) Run(ctx context.Context) (*MetricsSnapshot, error) {
	rt := newRuntime(t, nil)
	return rt.run(ctx)
}

// RunWithErrorHandler is Run with a callback invoked on component errors.
func (t *Topology) RunWithErrorHandler(ctx context.Context, onError func(component string, err error)) (*MetricsSnapshot, error) {
	rt := newRuntime(t, onError)
	return rt.run(ctx)
}

func (rt *runtime) run(ctx context.Context) (*MetricsSnapshot, error) {
	st := rt.start(ctx)
	st.Wait()
	return st.Metrics(), nil
}

// start launches all tasks and returns a handle for supervision.
func (rt *runtime) start(ctx context.Context) *RunningTopology {
	t := rt.topo
	if rt.ak != nil {
		go rt.ak.run()
	}
	if rt.ovf != nil {
		go rt.ovf.run()
	}
	for _, b := range t.bolts {
		for _, tk := range rt.taskList(b.name) {
			rt.taskWG.Add(1)
			go rt.runBoltTask(b, tk)
		}
		if b.tick > 0 {
			rt.tickerWG.Add(1)
			go rt.runTicker(b)
		}
	}
	for _, s := range t.spouts {
		for _, tk := range rt.taskList(s.name) {
			rt.spoutWG.Add(1)
			go rt.runSpoutTask(s, tk)
		}
	}
	h := &RunningTopology{rt: rt, done: make(chan struct{})}
	go func() {
		if ctx != nil {
			go func() {
				select {
				case <-ctx.Done():
					h.Stop()
				case <-h.done:
				}
			}()
		}
		rt.spoutWG.Wait()  // all spouts exhausted or stopped
		rt.waitQuiescent() // all regular tuples drained (incl. spilled ones)
		if rt.ovf != nil {
			rt.ovf.stopDrainer() // ring is empty (pending covered it); drainer idle
		}
		close(rt.tickerStop) // no more interval ticks
		rt.tickerWG.Wait()
		rt.waitQuiescent()
		// Block any further rebalance before tearing the task set down.
		rt.rebalanceMu.Lock()
		rt.closed = true
		rt.rebalanceMu.Unlock()
		rt.flushTicks() // cascade final combiner flushes
		for _, name := range t.Components() {
			ct := rt.comps[name]
			if !ct.isSpout {
				for _, tk := range ct.tasks() {
					close(tk.in)
				}
			}
		}
		rt.taskWG.Wait()
		if rt.ak != nil {
			// All senders (task goroutines) are done; drain and stop.
			rt.ak.shutdown()
		}
		if rt.ovf != nil {
			rt.ovf.close()
		}
		close(h.done)
	}()
	return h
}

// Rebalance changes the live parallelism of a bolt while the topology
// runs, the analog of Storm's `rebalance` command (§3.1 operations).
// See runtime.rebalance for the protocol.
func (h *RunningTopology) Rebalance(component string, parallelism int) error {
	return h.rt.rebalance(component, parallelism)
}

// Parallelism reports the component's current live task count (which a
// Rebalance may have changed since build time), or 0 if unknown.
func (h *RunningTopology) Parallelism(component string) int {
	ct, ok := h.rt.comps[component]
	if !ok {
		return 0
	}
	return len(ct.tasks())
}

// Rebalances reports how many rebalances have completed on this topology.
func (h *RunningTopology) Rebalances() int64 { return h.rt.rebalances.Load() }

// BackpressureStats reports the spout throttle's trip count and total
// paused time. Zeros when backpressure is not enabled.
func (h *RunningTopology) BackpressureStats() (pauses int64, paused time.Duration) {
	if h.rt.bp == nil {
		return 0, 0
	}
	return h.rt.bp.pauses.Load(), time.Duration(h.rt.bp.pausedNanos.Load())
}

// OverflowStats reports the disk ring's spill/drain batch counts. Zeros
// when the overflow ring is not enabled.
func (h *RunningTopology) OverflowStats() (spilled, drained int64) {
	if h.rt.ovf == nil {
		return 0, 0
	}
	return h.rt.ovf.spilledBatches.Load(), h.rt.ovf.drainedBatches.Load()
}

// Quiesce parks every spout, drains all in-flight tuples, tick-flushes
// combiner bolts downstream, runs fn while the pipeline is frozen, and
// resumes polling when fn returns. While fn runs no spout polls or
// commits and no tuple is queued or executing, so external state written
// by the bolts is exact with respect to the spouts' consumed input —
// the consistency point a checkpoint needs to capture store state and
// consumer offsets together. Serialized with Rebalance and shutdown;
// fn's error is returned verbatim.
func (h *RunningTopology) Quiesce(fn func() error) error {
	rt := h.rt
	rt.rebalanceMu.Lock()
	defer rt.rebalanceMu.Unlock()
	if rt.closed {
		return fmt.Errorf("stream: topology already shut down")
	}
	rt.paused.Store(true)
	defer rt.paused.Store(false)
	for rt.pausedSpouts.Load() < rt.activeSpouts.Load() {
		time.Sleep(50 * time.Microsecond)
	}
	rt.waitQuiescent()
	// Push buffered combiner aggregates downstream with regular ticks (no
	// "final" marker — the bolts keep running), in topological order so a
	// flush cascades through downstream combiners before theirs fires.
	byName := make(map[string]*boltDecl, len(rt.topo.bolts))
	for _, b := range rt.topo.bolts {
		byName[b.name] = b
	}
	for _, name := range rt.topo.order {
		decl := byName[name]
		if decl == nil || decl.tick <= 0 {
			continue
		}
		batch := []*Tuple{{Component: name, Stream: TickStream}}
		for _, tk := range rt.taskList(name) {
			rt.pending.Add(1)
			tk.in <- batch
		}
		rt.waitQuiescent()
	}
	return fn()
}

// rebalance retargets one bolt to n fresh tasks without losing or
// double-processing a single in-flight tuple:
//
//  1. Pause every spout and wait until each has flushed its collector and
//     parked, then wait for the topology to drain (pending == 0). By the
//     enqueue-before-ack invariant (DESIGN.md §10), a drained topology has
//     no tuple in any queue, any collector buffer, or any bolt's hands.
//  2. Tick-flush the component (combiner bolts push buffered aggregates
//     downstream on ticks) and drain again, so no in-memory aggregate
//     state is lost when the old instances retire.
//  3. Under the tick gate, close the old tasks' input channels, wait for
//     each goroutine to exit (its deferred flushAll has run), fold the
//     retired generation's metrics shards into the component accumulator,
//     and install the new assignment. No emitter can observe the swap
//     mid-flight: all collectors are parked with empty buffers, and
//     edgeBuf.sync adopts the new assignment on the next emit.
//  4. Spawn the new tasks and resume the spouts.
//
// Spouts cannot be rebalanced: their task count is bound to external
// input partitioning (consumer-group offsets), not to routing.
func (rt *runtime) rebalance(component string, n int) error {
	if n <= 0 {
		return fmt.Errorf("stream: rebalance %q: parallelism must be >= 1, got %d", component, n)
	}
	if n > NumPartitions {
		return fmt.Errorf("stream: rebalance %q: parallelism %d exceeds the %d logical partitions", component, n, NumPartitions)
	}
	ct, ok := rt.comps[component]
	if !ok {
		return fmt.Errorf("%w %q", ErrUnknownComponent, component)
	}
	if ct.isSpout {
		return fmt.Errorf("stream: cannot rebalance spout %q (spout parallelism is bound to input partitioning)", component)
	}
	var decl *boltDecl
	for _, b := range rt.topo.bolts {
		if b.name == component {
			decl = b
		}
	}
	rt.rebalanceMu.Lock()
	defer rt.rebalanceMu.Unlock()
	if rt.closed {
		return fmt.Errorf("stream: topology already shut down")
	}
	old := ct.assign.Load()
	if len(old.tasks) == n {
		return nil // already at the requested parallelism
	}

	// 1. Park the spouts and drain the pipeline.
	rt.paused.Store(true)
	defer rt.paused.Store(false)
	for rt.pausedSpouts.Load() < rt.activeSpouts.Load() {
		time.Sleep(50 * time.Microsecond)
	}
	rt.waitQuiescent()

	// 2. Flush the component's buffered aggregates downstream. A regular
	// tick (no "final" marker) leaves combiners running; they simply emit
	// what they hold, which the fresh instances will not have.
	if decl != nil && decl.tick > 0 {
		batch := []*Tuple{{Component: component, Stream: TickStream}}
		for _, tk := range old.tasks {
			rt.pending.Add(1)
			tk.in <- batch
		}
		rt.waitQuiescent()
	}

	// 3. Retire the old generation under the tick gate.
	rt.tickGate.Lock()
	for _, tk := range old.tasks {
		close(tk.in)
	}
	for _, tk := range old.tasks {
		<-tk.done
	}
	rt.metrics.component(component).fold(n)
	next := newAssignment(rt.newTasks(component, n, false, 0))
	ct.assign.Store(next)
	rt.tickGate.Unlock()

	// 4. Spawn the new generation and resume.
	for _, tk := range next.tasks {
		rt.taskWG.Add(1)
		go rt.runBoltTask(decl, tk)
	}
	rt.ensureQueueGauges(component, n)
	rt.rebalances.Add(1)
	return nil
}

// RunningTopology is a handle to an executing topology: it supports
// waiting for completion, early stop, and supervisor-style fault
// injection (task restarts).
type RunningTopology struct {
	rt       *runtime
	done     chan struct{}
	stopOnce sync.Once
}

// Wait blocks until the topology has fully shut down.
func (h *RunningTopology) Wait() { <-h.done }

// Done returns a channel closed when the topology has shut down.
func (h *RunningTopology) Done() <-chan struct{} { return h.done }

// Stop asks the spouts to stop; processing drains and flushes as in a
// normal completion.
func (h *RunningTopology) Stop() {
	h.stopOnce.Do(func() { close(h.rt.spoutStop) })
}

// RestartTask simulates a worker crash-and-restart of one task of the
// named component: the current instance is discarded with all in-memory
// state and a fresh instance from the factory takes over the same queue.
// This reproduces the paper's fail-fast, state-free worker model (§3.1).
func (h *RunningTopology) RestartTask(component string, index int) error {
	ct, ok := h.rt.comps[component]
	if !ok {
		return fmt.Errorf("%w %q", ErrUnknownComponent, component)
	}
	tasks := ct.tasks()
	if index < 0 || index >= len(tasks) {
		return fmt.Errorf("stream: component %q has no task %d", component, index)
	}
	select {
	case tasks[index].ctrl <- ctrlRestart:
		return nil
	case <-h.done:
		return fmt.Errorf("stream: topology already shut down")
	}
}

// Restarts reports how many times the given task has been restarted.
// Counts reset when a rebalance replaces the component's tasks.
func (h *RunningTopology) Restarts(component string, index int) int64 {
	ct, ok := h.rt.comps[component]
	if !ok {
		return 0
	}
	tasks := ct.tasks()
	if index < 0 || index >= len(tasks) {
		return 0
	}
	return tasks[index].restarts.Load()
}

// Metrics returns a point-in-time snapshot of the topology metrics.
func (h *RunningTopology) Metrics() *MetricsSnapshot { return h.rt.metrics.snapshot() }

// Submit starts the topology without blocking and returns its handle.
// It is the engine's equivalent of submitting a topology to a Storm
// cluster; the topology "will process messages forever unless it is
// killed" (§5.1) — here, until Stop is called or the spouts exhaust.
func (t *Topology) Submit() *RunningTopology {
	rt := newRuntime(t, nil)
	return rt.start(nil)
}

// SubmitWithErrorHandler is Submit with an error callback.
func (t *Topology) SubmitWithErrorHandler(onError func(string, error)) *RunningTopology {
	rt := newRuntime(t, onError)
	return rt.start(nil)
}
