package stream

import (
	"bytes"
	"encoding/binary"
	"encoding/gob"
	"fmt"
	"os"
	"sync/atomic"
	"time"

	"tencentrec/internal/tdaccess"
)

// overflow is the disk-backed burst buffer (enabled with
// TopologyBuilder.SetOverflow), the engine's analog of a disk-buffer
// stage between ingestion and processing: when a spout emission's
// destination queue is full, the batch is appended to a segmented
// on-disk FIFO ring (reusing the tdaccess partition-log machinery)
// instead of blocking the spout, and a single drainer goroutine replays
// ring batches into the destination queues as they free up.
//
// The ring is burst absorption, not a durability log: it lives in a
// fresh temp directory per run and is removed on shutdown. Spilled
// tuples stay counted in the runtime's pending gauge from the moment
// they are diverted (flushDest counts the batch before spilling), so
// quiescence detection, rebalance drains and acking semantics are
// identical whether a tuple travelled through memory or disk. Lineage
// roots and ack ids survive the disk round-trip; sampled traces do not
// (a spilled tuple simply leaves its trace unfinished).
//
// Ordering: only spout collectors spill, and a collector that has
// spilled once routes every subsequent batch through the ring until the
// ring is fully drained (collector.spilling), so per-collector delivery
// order — the order per-user keys rely on — is preserved: the ring is
// FIFO, and the drainer's channel send for the last ring batch completes
// before the collector's next direct send can be attempted.
type overflow struct {
	rt  *runtime
	dir string // per-run temp dir, removed on close
	log *tdaccess.SpillLog

	readOffset atomic.Int64 // next ring offset to replay; advanced after delivery

	spilledBatches atomic.Int64
	drainedBatches atomic.Int64
	spilledTuples  atomic.Int64
	drainedTuples  atomic.Int64

	notify chan struct{} // wakes the drainer after an append
	stop   chan struct{}
	done   chan struct{}
}

// spillFrame is the gob payload of one ring record. The destination is
// identified by the stable edge id plus the task slot the batch was
// routed to; the tuples' Component/Stream/fields are implied by the
// edge. Roots and AckIDs carry lineage state (zeros when unanchored).
type spillFrame struct {
	Edge   int
	Slot   int32
	Roots  []uint64
	AckIDs []uint64
	Values [][]interface{}
}

func init() {
	// Concrete types that may appear in spilled tuple values. A value of
	// an unregistered type makes the gob encode fail, which flushDest
	// handles by falling back to the blocking send — correctness is never
	// gated on encodability.
	gob.Register(time.Time{})
	gob.Register([]byte(nil))
	gob.Register([]string(nil))
	gob.Register([]interface{}(nil))
	gob.Register(map[string]interface{}(nil))
}

// overflowTrimStride is how many drained batches pass between segment
// trims of the ring's consumed prefix.
const overflowTrimStride = 256

func openOverflow(rt *runtime, dir string) (*overflow, error) {
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return nil, fmt.Errorf("stream: overflow dir: %w", err)
	}
	tmp, err := os.MkdirTemp(dir, "overflow-*")
	if err != nil {
		return nil, fmt.Errorf("stream: overflow dir: %w", err)
	}
	log, err := tdaccess.OpenSpillLog(tmp, 0)
	if err != nil {
		os.RemoveAll(tmp)
		return nil, fmt.Errorf("stream: overflow ring: %w", err)
	}
	return &overflow{
		rt:     rt,
		dir:    tmp,
		log:    log,
		notify: make(chan struct{}, 1),
		stop:   make(chan struct{}),
		done:   make(chan struct{}),
	}, nil
}

// backlog is the number of spilled batches not yet replayed.
func (o *overflow) backlog() int64 { return o.log.NextOffset() - o.readOffset.Load() }

// empty reports whether every spilled batch has been delivered to its
// destination queue (the drainer advances readOffset only after its
// send completes, so empty implies the ring's contents are all enqueued).
func (o *overflow) empty() bool { return o.backlog() == 0 }

// spill diverts one routed batch to the disk ring. It returns false —
// leaving the batch untouched, for the caller's blocking-send fallback —
// if the values cannot be encoded. On success the batch's tuples are
// released (the ring now owns the data; reconstruction mints fresh
// single-reference tuples) and the drainer is woken.
//
// Record layout: 4-byte little-endian tuple count, then the gob frame.
// The redundant count lets a decode failure still repair the pending
// gauge instead of wedging quiescence.
func (o *overflow) spill(e *edge, slot int, buf []*Tuple) bool {
	fr := spillFrame{
		Edge:   e.id,
		Slot:   int32(slot),
		Roots:  make([]uint64, len(buf)),
		AckIDs: make([]uint64, len(buf)),
		Values: make([][]interface{}, len(buf)),
	}
	for i, t := range buf {
		fr.Roots[i] = t.root
		fr.AckIDs[i] = t.ackID
		fr.Values[i] = t.Values
	}
	var b bytes.Buffer
	var cnt [4]byte
	binary.LittleEndian.PutUint32(cnt[:], uint32(len(buf)))
	b.Write(cnt[:])
	if err := gob.NewEncoder(&b).Encode(&fr); err != nil {
		return false
	}
	if _, err := o.log.Append(b.Bytes()); err != nil {
		o.rt.onError("__overflow", fmt.Errorf("spill append: %w", err))
		return false
	}
	o.spilledBatches.Add(1)
	o.spilledTuples.Add(int64(len(buf)))
	for _, t := range buf {
		t.release()
	}
	select {
	case o.notify <- struct{}{}:
	default:
	}
	return true
}

// run is the drainer loop: replay ring batches in FIFO order, blocking
// on the destination queue when it is full (the drainer's patience is
// what converts a burst into disk residency instead of spout stalls).
// It exits via stopDrainer, which is only called once the ring is empty
// — spilled batches are pending tuples, and the runtime reaches the
// drainer shutdown only after waitQuiescent.
func (o *overflow) run() {
	defer close(o.done)
	sinceTrim := 0
	for {
		if o.backlog() == 0 {
			select {
			case <-o.stop:
				return
			case <-o.notify:
			}
			continue
		}
		off := o.readOffset.Load()
		if n, ok := o.replay(off); ok {
			o.drainedBatches.Add(1)
			o.drainedTuples.Add(int64(n))
		} else if n > 0 {
			// Undeliverable record: repair the pending gauge so the
			// topology can still quiesce, and count the loss.
			o.rt.pending.Add(-int64(n))
		}
		o.readOffset.Store(off + 1)
		if sinceTrim++; sinceTrim >= overflowTrimStride {
			if err := o.log.TrimTo(off + 1); err != nil {
				o.rt.onError("__overflow", err)
			}
			sinceTrim = 0
		}
	}
}

// replay reads, decodes and delivers the ring record at off. It returns
// the record's tuple count and whether delivery happened.
func (o *overflow) replay(off int64) (int, bool) {
	data, err := o.log.ReadAt(off)
	if err != nil || len(data) < 4 {
		o.rt.onError("__overflow", fmt.Errorf("replay read at %d: %w", off, err))
		return 0, false
	}
	n := int(binary.LittleEndian.Uint32(data[:4]))
	var fr spillFrame
	if err := gob.NewDecoder(bytes.NewReader(data[4:])).Decode(&fr); err != nil {
		o.rt.onError("__overflow", fmt.Errorf("replay decode at %d: %w", off, err))
		return n, false
	}
	e := o.rt.edgeList[fr.Edge]
	fields := o.rt.fields[e.src][e.stream]
	batch := make([]*Tuple, len(fr.Values))
	for i, vals := range fr.Values {
		t := getTuple(e.src, e.stream, Values(vals), fields)
		t.root = fr.Roots[i]
		t.ackID = fr.AckIDs[i]
		t.refs.Store(1)
		batch[i] = t
	}
	// The slot was routed under an assignment the ring outlived only if a
	// rebalance happened, and rebalances drain the ring first — but guard
	// the index anyway so a future invariant slip degrades to misrouting
	// within the component rather than a panic.
	a := e.dest.assign.Load()
	slot := int(fr.Slot)
	if slot >= len(a.tasks) {
		slot = slot % len(a.tasks)
	}
	a.tasks[slot].in <- batch
	return len(batch), true
}

// stopDrainer stops the replay loop. Call only when the ring is empty.
func (o *overflow) stopDrainer() {
	close(o.stop)
	<-o.done
}

// close releases the ring's disk space. Call after stopDrainer.
func (o *overflow) close() {
	if err := o.log.Close(); err != nil {
		o.rt.onError("__overflow", err)
	}
	os.RemoveAll(o.dir)
}
