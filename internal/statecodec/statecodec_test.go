package statecodec

import (
	"encoding/json"
	"math"
	"math/rand"
	"reflect"
	"testing"
	"testing/quick"

	"tencentrec/internal/core"
)

// quickCfg bumps the case count: codec round-trips are cheap and the
// corner cases (empty maps, huge floats, NUL-bearing keys) matter.
func quickCfg() *quick.Config {
	return &quick.Config{MaxCount: 500, Rand: rand.New(rand.NewSource(1))}
}

// normFloat squashes NaN, which does not compare equal to itself and is
// never produced by the pipeline's counters.
func normFloat(v float64) float64 {
	if math.IsNaN(v) {
		return 0.5
	}
	return v
}

func TestFloatRoundTrip(t *testing.T) {
	f := func(v float64) bool {
		v = normFloat(v)
		got, err := DecodeFloat(EncodeFloat(v))
		return err == nil && got == v
	}
	if err := quick.Check(f, quickCfg()); err != nil {
		t.Fatal(err)
	}
	if _, err := DecodeFloat([]byte{1, 2, 3}); err == nil {
		t.Fatal("DecodeFloat accepted a short value")
	}
}

func TestHistoryRoundTrip(t *testing.T) {
	f := func(items []string, ratings []float64, ts []int64) bool {
		h := make(History)
		for i, item := range items {
			var r Rating
			if i < len(ratings) {
				r.Rating = normFloat(ratings[i])
			}
			if i < len(ts) {
				r.TS = ts[i]
				r.Session = ts[i] / 7
			}
			h[item] = r
		}
		got, err := DecodeHistory(EncodeHistory(h))
		return err == nil && reflect.DeepEqual(got, h)
	}
	if err := quick.Check(f, quickCfg()); err != nil {
		t.Fatal(err)
	}
}

func TestHistoryLegacyJSONDecode(t *testing.T) {
	h := History{
		"item-a": {Rating: 0.75, TS: 123456789, Session: 42},
		"":       {Rating: 1},
	}
	raw, err := json.Marshal(h)
	if err != nil {
		t.Fatal(err)
	}
	got, err := DecodeHistory(raw)
	if err != nil || !reflect.DeepEqual(got, h) {
		t.Fatalf("legacy decode = %+v, %v", got, err)
	}
}

func TestListRoundTrip(t *testing.T) {
	f := func(items []string, scores []float64) bool {
		l := make(List, 0, len(items))
		for i, item := range items {
			var s float64
			if i < len(scores) {
				s = normFloat(scores[i])
			}
			l = append(l, core.ScoredItem{Item: item, Score: s})
		}
		got, err := DecodeList(EncodeList(l))
		if err != nil {
			return false
		}
		if len(l) == 0 {
			return len(got) == 0
		}
		return reflect.DeepEqual(got, l)
	}
	if err := quick.Check(f, quickCfg()); err != nil {
		t.Fatal(err)
	}
}

func TestListLegacyJSONDecode(t *testing.T) {
	l := List{{Item: "x", Score: 0.9}, {Item: "y", Score: 0.1}}
	raw, err := json.Marshal(l)
	if err != nil {
		t.Fatal(err)
	}
	got, err := DecodeList(raw)
	if err != nil || !reflect.DeepEqual(got, l) {
		t.Fatalf("legacy decode = %+v, %v", got, err)
	}
}

func TestProfileRoundTrip(t *testing.T) {
	f := func(terms []string, weights []float64, updated, published int64) bool {
		p := Profile{Weights: make(map[string]float64), UpdatedTS: updated, Published: published}
		for i, term := range terms {
			var w float64
			if i < len(weights) {
				w = normFloat(weights[i])
			}
			p.Weights[term] = w
		}
		got, err := DecodeProfile(EncodeProfile(p))
		return err == nil && reflect.DeepEqual(got, p)
	}
	if err := quick.Check(f, quickCfg()); err != nil {
		t.Fatal(err)
	}
}

func TestProfileLegacyJSONDecode(t *testing.T) {
	p := Profile{Weights: map[string]float64{"term": 0.3}, UpdatedTS: 99, Published: 7}
	raw, err := json.Marshal(p)
	if err != nil {
		t.Fatal(err)
	}
	got, err := DecodeProfile(raw)
	if err != nil || !reflect.DeepEqual(got, p) {
		t.Fatalf("legacy decode = %+v, %v", got, err)
	}
}

// TestCorruptInputsNeverPanic fuzzes the decoders with truncations,
// bit-flips and type confusions; every outcome must be a wrapped error
// or a clean value, never a panic.
func TestCorruptInputsNeverPanic(t *testing.T) {
	seeds := [][]byte{
		EncodeHistory(History{"item": {Rating: 1, TS: 2, Session: 3}, "other": {Rating: 0.5}}),
		EncodeList(List{{Item: "a", Score: 1}, {Item: "b", Score: 0.25}}),
		EncodeProfile(Profile{Weights: map[string]float64{"t1": 1, "t2": 2}, UpdatedTS: 5}),
		[]byte(`{"item":{"r":1,"t":2,"s":3}}`),
		[]byte(`[{"Item":"a","Score":1}]`),
		{},
		{tagBinary},
		{tagBinary, typeHistory},
		{tagBinary, typeList, version, 0xff, 0xff, 0xff, 0xff, 0xff, 0xff, 0xff, 0xff, 0xff, 0x01},
	}
	decoders := []func([]byte) error{
		func(b []byte) error { _, err := DecodeHistory(b); return err },
		func(b []byte) error { _, err := DecodeList(b); return err },
		func(b []byte) error { _, err := DecodeProfile(b); return err },
		func(b []byte) error { _, err := DecodeFloat(b); return err },
	}
	rng := rand.New(rand.NewSource(2))
	for _, seed := range seeds {
		for trial := 0; trial < 400; trial++ {
			mut := append([]byte(nil), seed...)
			switch rng.Intn(3) {
			case 0: // truncate
				if len(mut) > 0 {
					mut = mut[:rng.Intn(len(mut))]
				}
			case 1: // flip bytes
				for i := 0; i < 1+rng.Intn(4) && len(mut) > 0; i++ {
					mut[rng.Intn(len(mut))] ^= byte(1 << rng.Intn(8))
				}
			case 2: // append garbage
				extra := make([]byte, rng.Intn(9))
				rng.Read(extra)
				mut = append(mut, extra...)
			}
			for _, dec := range decoders {
				_ = dec(mut) // must not panic
			}
		}
	}
	// Type confusion: a history decoded as a profile must error.
	if _, err := DecodeProfile(EncodeHistory(History{"x": {}})); err == nil {
		t.Fatal("DecodeProfile accepted a history value")
	}
	if _, err := DecodeList(EncodeProfile(Profile{})); err == nil {
		t.Fatal("DecodeList accepted a profile value")
	}
	// Unknown version must error, not misparse.
	bad := EncodeList(List{{Item: "a", Score: 1}})
	bad[2] = 99
	if _, err := DecodeList(bad); err == nil {
		t.Fatal("DecodeList accepted an unknown version")
	}
}

// --- BenchmarkStateCodec: binary vs. the legacy JSON path -----------------

func benchHistory(n int) History {
	h := make(History, n)
	for i := 0; i < n; i++ {
		h[benchItemID(i)] = Rating{Rating: float64(i%5) + 0.5, TS: int64(i) * 1e9, Session: int64(i / 8)}
	}
	return h
}

func benchList(n int) List {
	l := make(List, n)
	for i := range l {
		l[i] = core.ScoredItem{Item: benchItemID(i), Score: 1 / float64(i+1)}
	}
	return l
}

func benchItemID(i int) string {
	return "item-" + string(rune('a'+i%26)) + string(rune('a'+(i/26)%26)) + string(rune('a'+(i/676)%26))
}

func BenchmarkStateCodec(b *testing.B) {
	hist := benchHistory(64)
	list := benchList(50)
	b.Run("history-binary", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			raw := EncodeHistory(hist)
			if _, err := DecodeHistory(raw); err != nil {
				b.Fatal(err)
			}
		}
	})
	b.Run("history-json", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			raw, _ := json.Marshal(hist)
			h := make(History)
			if err := json.Unmarshal(raw, &h); err != nil {
				b.Fatal(err)
			}
		}
	})
	b.Run("list-binary", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			raw := EncodeList(list)
			if _, err := DecodeList(raw); err != nil {
				b.Fatal(err)
			}
		}
	})
	b.Run("list-json", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			raw, _ := json.Marshal(list)
			var l List
			if err := json.Unmarshal(raw, &l); err != nil {
				b.Fatal(err)
			}
		}
	})
}
