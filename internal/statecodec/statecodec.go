// Package statecodec defines the serialized forms of every status-data
// type the pipeline stores in TDStore: user behavior histories, scored
// item lists, content profiles and float scalars.
//
// The paper's status store moves billions of values per day (§5), so the
// wire format matters: JSON encoding of a history or a similar-items
// list costs an order of magnitude more CPU than a length-prefixed
// binary layout. This package owns a versioned binary format and keeps a
// legacy JSON decode path so values written by earlier releases still
// read back during rollover.
//
// Binary layout. Every binary value starts with a three-byte header:
//
//	[0] tagBinary (0x01) — distinguishes binary from legacy JSON, whose
//	    first byte is always '{', '[', whitespace or 'n' (null);
//	[1] a type byte ('H' history, 'L' list, 'P' profile) guarding
//	    against decoding a value under the wrong key prefix;
//	[2] a format version, currently 1.
//
// The payload uses uvarint-prefixed strings, uvarint counts and 8-byte
// little-endian IEEE-754 floats. Unknown versions and malformed payloads
// decode to wrapped errors, never panics.
//
// Float scalars are the exception: they keep the historical raw 8-byte
// little-endian layout (no header) because windowed counters and
// thresholds were already binary and the store's IncrFloat primitive
// depends on the fixed width.
package statecodec

import (
	"encoding/binary"
	"encoding/json"
	"fmt"
	"math"

	"tencentrec/internal/core"
)

// tagBinary is the first byte of every header-carrying binary value.
// JSON values never start with it, which is what makes the legacy
// fallback unambiguous.
const tagBinary = 0x01

// Type bytes, one per stored status-data shape.
const (
	typeHistory = 'H'
	typeList    = 'L'
	typeProfile = 'P'
)

// version is the current binary format version. Bump it when the
// payload layout changes; decoders must keep reading every version they
// ever wrote (the store is never migrated in place).
const version = 1

// EncodeFloat encodes a float64 scalar (counters, thresholds, scores)
// as 8 little-endian bytes.
func EncodeFloat(v float64) []byte {
	var b [8]byte
	binary.LittleEndian.PutUint64(b[:], math.Float64bits(v))
	return b[:]
}

// DecodeFloat reverses EncodeFloat.
func DecodeFloat(b []byte) (float64, error) {
	if len(b) != 8 {
		return 0, fmt.Errorf("statecodec: float value has %d bytes, want 8", len(b))
	}
	return math.Float64frombits(binary.LittleEndian.Uint64(b)), nil
}

// Rating is one entry in a stored user behavior history.
type Rating struct {
	Rating  float64 `json:"r"`
	TS      int64   `json:"t"`
	Session int64   `json:"s"`
}

// History is the stored form of a user's behavior history: item id to
// the max-weight rating with its timestamp and session.
type History map[string]Rating

// List is a stored scored-item list (similar items, hot items, AR
// consequents, CTR rankings), descending by score.
type List []core.ScoredItem

// Profile is a stored CB interest or item content profile.
type Profile struct {
	Weights   map[string]float64 `json:"w"`
	UpdatedTS int64              `json:"u,omitempty"`
	Published int64              `json:"p,omitempty"`
}

// header emits the three-byte binary header.
func header(buf []byte, typ byte) []byte {
	return append(buf, tagBinary, typ, version)
}

// checkHeader validates a binary header and returns the payload.
func checkHeader(b []byte, typ byte, what string) ([]byte, error) {
	if len(b) < 3 {
		return nil, fmt.Errorf("statecodec: %s value truncated (%d bytes)", what, len(b))
	}
	if b[1] != typ {
		return nil, fmt.Errorf("statecodec: %s value has type byte %q, want %q", what, b[1], typ)
	}
	if b[2] != version {
		return nil, fmt.Errorf("statecodec: %s value has unknown format version %d", what, b[2])
	}
	return b[3:], nil
}

// isBinary reports whether b carries the binary header tag. Legacy JSON
// values (and raw floats) never start with 0x01.
func isBinary(b []byte) bool {
	return len(b) > 0 && b[0] == tagBinary
}

func appendString(buf []byte, s string) []byte {
	buf = binary.AppendUvarint(buf, uint64(len(s)))
	return append(buf, s...)
}

func readString(b []byte, what string) (string, []byte, error) {
	n, sz := binary.Uvarint(b)
	if sz <= 0 || n > uint64(len(b)-sz) {
		return "", nil, fmt.Errorf("statecodec: %s string length corrupt", what)
	}
	return string(b[sz : sz+int(n)]), b[sz+int(n):], nil
}

func appendFloat(buf []byte, v float64) []byte {
	return binary.LittleEndian.AppendUint64(buf, math.Float64bits(v))
}

func readFloat(b []byte, what string) (float64, []byte, error) {
	if len(b) < 8 {
		return 0, nil, fmt.Errorf("statecodec: %s float truncated", what)
	}
	return math.Float64frombits(binary.LittleEndian.Uint64(b)), b[8:], nil
}

func readInt64(b []byte, what string) (int64, []byte, error) {
	if len(b) < 8 {
		return 0, nil, fmt.Errorf("statecodec: %s int64 truncated", what)
	}
	return int64(binary.LittleEndian.Uint64(b)), b[8:], nil
}

func readCount(b []byte, what string) (int, []byte, error) {
	n, sz := binary.Uvarint(b)
	// Each encoded entry occupies at least one byte, so a count beyond
	// the remaining payload is corruption, not a big value.
	if sz <= 0 || n > uint64(len(b)-sz) {
		return 0, nil, fmt.Errorf("statecodec: %s count corrupt", what)
	}
	return int(n), b[sz:], nil
}

// EncodeHistory serializes a behavior history in binary form.
func EncodeHistory(h History) []byte {
	buf := header(make([]byte, 0, 3+len(h)*32), typeHistory)
	buf = binary.AppendUvarint(buf, uint64(len(h)))
	for item, r := range h {
		buf = appendString(buf, item)
		buf = appendFloat(buf, r.Rating)
		buf = binary.LittleEndian.AppendUint64(buf, uint64(r.TS))
		buf = binary.LittleEndian.AppendUint64(buf, uint64(r.Session))
	}
	return buf
}

// DecodeHistory parses a stored history, accepting both the binary
// format and legacy JSON.
func DecodeHistory(b []byte) (History, error) {
	if !isBinary(b) {
		h := make(History)
		if err := json.Unmarshal(b, &h); err != nil {
			return nil, fmt.Errorf("statecodec: bad legacy history: %w", err)
		}
		return h, nil
	}
	rest, err := checkHeader(b, typeHistory, "history")
	if err != nil {
		return nil, err
	}
	n, rest, err := readCount(rest, "history")
	if err != nil {
		return nil, err
	}
	h := make(History, n)
	for i := 0; i < n; i++ {
		var item string
		var r Rating
		if item, rest, err = readString(rest, "history item"); err != nil {
			return nil, err
		}
		if r.Rating, rest, err = readFloat(rest, "history rating"); err != nil {
			return nil, err
		}
		if r.TS, rest, err = readInt64(rest, "history ts"); err != nil {
			return nil, err
		}
		if r.Session, rest, err = readInt64(rest, "history session"); err != nil {
			return nil, err
		}
		h[item] = r
	}
	return h, nil
}

// EncodeList serializes a scored-item list in binary form.
func EncodeList(l List) []byte {
	buf := header(make([]byte, 0, 3+len(l)*24), typeList)
	buf = binary.AppendUvarint(buf, uint64(len(l)))
	for _, sc := range l {
		buf = appendString(buf, sc.Item)
		buf = appendFloat(buf, sc.Score)
	}
	return buf
}

// DecodeList parses a stored scored list, accepting both the binary
// format and legacy JSON.
func DecodeList(b []byte) (List, error) {
	if !isBinary(b) {
		var l List
		if err := json.Unmarshal(b, &l); err != nil {
			return nil, fmt.Errorf("statecodec: bad legacy scored list: %w", err)
		}
		return l, nil
	}
	rest, err := checkHeader(b, typeList, "list")
	if err != nil {
		return nil, err
	}
	n, rest, err := readCount(rest, "list")
	if err != nil {
		return nil, err
	}
	l := make(List, 0, n)
	for i := 0; i < n; i++ {
		var sc core.ScoredItem
		if sc.Item, rest, err = readString(rest, "list item"); err != nil {
			return nil, err
		}
		if sc.Score, rest, err = readFloat(rest, "list score"); err != nil {
			return nil, err
		}
		l = append(l, sc)
	}
	return l, nil
}

// EncodeProfile serializes a term-weight profile in binary form.
func EncodeProfile(p Profile) []byte {
	buf := header(make([]byte, 0, 3+16+len(p.Weights)*24), typeProfile)
	buf = binary.LittleEndian.AppendUint64(buf, uint64(p.UpdatedTS))
	buf = binary.LittleEndian.AppendUint64(buf, uint64(p.Published))
	buf = binary.AppendUvarint(buf, uint64(len(p.Weights)))
	for term, w := range p.Weights {
		buf = appendString(buf, term)
		buf = appendFloat(buf, w)
	}
	return buf
}

// DecodeProfile parses a stored profile, accepting both the binary
// format and legacy JSON.
func DecodeProfile(b []byte) (Profile, error) {
	if !isBinary(b) {
		var p Profile
		if err := json.Unmarshal(b, &p); err != nil {
			return Profile{}, fmt.Errorf("statecodec: bad legacy profile: %w", err)
		}
		return p, nil
	}
	rest, err := checkHeader(b, typeProfile, "profile")
	if err != nil {
		return Profile{}, err
	}
	var p Profile
	if p.UpdatedTS, rest, err = readInt64(rest, "profile updated"); err != nil {
		return Profile{}, err
	}
	if p.Published, rest, err = readInt64(rest, "profile published"); err != nil {
		return Profile{}, err
	}
	n, rest, err := readCount(rest, "profile")
	if err != nil {
		return Profile{}, err
	}
	p.Weights = make(map[string]float64, n)
	for i := 0; i < n; i++ {
		var term string
		var w float64
		if term, rest, err = readString(rest, "profile term"); err != nil {
			return Profile{}, err
		}
		if w, rest, err = readFloat(rest, "profile weight"); err != nil {
			return Profile{}, err
		}
		p.Weights[term] = w
	}
	return p, nil
}
