package statecodec

// Exported wire-byte primitives. The cluster tuple transport
// (internal/cluster) frames its payloads with the same conventions as the
// state codecs in this package — uvarint-prefixed strings, little-endian
// 64-bit floats, payload-bounded counts — so the primitives are exported
// here rather than duplicated. The error-on-corruption contract matches
// the internal readers: a short or lying prefix returns an error, never a
// panic or an over-read.

// AppendString appends a uvarint length prefix followed by the bytes of s.
func AppendString(buf []byte, s string) []byte { return appendString(buf, s) }

// ReadString decodes a uvarint-prefixed string, returning the string, the
// remaining bytes, and an error naming `what` on corruption.
func ReadString(b []byte, what string) (string, []byte, error) { return readString(b, what) }

// AppendFloat appends v as little-endian IEEE-754 bits.
func AppendFloat(buf []byte, v float64) []byte { return appendFloat(buf, v) }

// ReadFloat decodes a little-endian float64.
func ReadFloat(b []byte, what string) (float64, []byte, error) { return readFloat(b, what) }

// ReadCount decodes a uvarint element count, rejecting counts larger than
// the remaining payload (each encoded element occupies at least a byte).
func ReadCount(b []byte, what string) (int, []byte, error) { return readCount(b, what) }
