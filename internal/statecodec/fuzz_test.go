package statecodec

import (
	"bytes"
	"math"
	"testing"
)

// The fuzz targets pin two properties of the codecs on arbitrary input:
// no decoder or delta helper may panic, and a delta helper that reports
// ok must leave the buffer decodable with the edit applied. Seeds cover
// the binary frames, legacy JSON, and truncations of both.

func fuzzSeeds(f *testing.F) {
	f.Add([]byte(nil))
	f.Add([]byte{})
	f.Add([]byte{tagBinary})
	f.Add([]byte(`{"a":{"r":1}}`))
	f.Add([]byte(`[]`))
	h := History{"item-a": {Rating: 1.5, TS: 100, Session: 3}, "b": {Rating: 0.5, TS: 7, Session: 1}}
	hb := EncodeHistory(h)
	f.Add(hb)
	f.Add(hb[:len(hb)/2])
	l := List{{Item: "x", Score: 2}, {Item: "yy", Score: 1}}
	lb := EncodeList(l)
	f.Add(lb)
	f.Add(lb[:len(lb)-3])
	f.Add(EncodeFloat(3.25))
	f.Add(EncodeProfile(Profile{Weights: map[string]float64{"k": 1.5}, UpdatedTS: 9, Published: 2}))
	// Hostile count: claims 127 entries with no body.
	f.Add([]byte{tagBinary, 'H', 1, 127})
	f.Add([]byte{tagBinary, 'L', 1, 127})
	// Two-byte count frame.
	f.Add([]byte{tagBinary, 'H', 1, 0x80, 0x01})
}

func FuzzDecodeHistory(f *testing.F) {
	fuzzSeeds(f)
	f.Fuzz(func(t *testing.T, data []byte) {
		h, err := DecodeHistory(data)
		if err != nil {
			return
		}
		// A decodable frame must survive re-encode → decode. Ratings are
		// compared at the bit level: fuzzed frames can carry NaN.
		h2, err := DecodeHistory(EncodeHistory(h))
		if err != nil {
			t.Fatalf("re-decode failed: %v", err)
		}
		if len(h) != len(h2) {
			t.Fatalf("round trip diverged: %v vs %v", h, h2)
		}
		for k, v := range h {
			v2, has := h2[k]
			if !has || v.TS != v2.TS || v.Session != v2.Session ||
				math.Float64bits(v.Rating) != math.Float64bits(v2.Rating) {
				t.Fatalf("round trip diverged at %q: %v vs %v", k, v, v2)
			}
		}
	})
}

func FuzzDecodeList(f *testing.F) {
	fuzzSeeds(f)
	f.Fuzz(func(t *testing.T, data []byte) {
		l, err := DecodeList(data)
		if err != nil {
			return
		}
		l2, err := DecodeList(EncodeList(l))
		if err != nil {
			t.Fatalf("re-decode failed: %v", err)
		}
		if len(l) != len(l2) {
			t.Fatalf("round trip diverged: %v vs %v", l, l2)
		}
	})
}

func FuzzDecodeProfile(f *testing.F) {
	fuzzSeeds(f)
	f.Fuzz(func(t *testing.T, data []byte) {
		p, err := DecodeProfile(data)
		if err != nil {
			return
		}
		if _, err := DecodeProfile(EncodeProfile(p)); err != nil {
			t.Fatalf("re-decode failed: %v", err)
		}
	})
}

func FuzzHistoryDelta(f *testing.F) {
	fuzzSeeds(f)
	f.Fuzz(func(t *testing.T, data []byte) {
		// Every read-side helper must tolerate arbitrary bytes.
		FindHistoryEntry(data, "probe")
		HistoryLen(data)
		if it, ok := IterHistory(data); ok {
			for {
				if _, _, more := it.Next(); !more {
					break
				}
			}
			it.Corrupt()
		}

		// Write-side helpers: work on a copy (they mutate in place), and
		// whatever they accept must decode with the edit applied.
		r := Rating{Rating: 2.5, TS: 42, Session: 7}
		cp := append([]byte(nil), data...)
		if out, ok := UpsertHistoryEntry(cp, "probe", r); ok {
			h, err := DecodeHistory(out)
			if err != nil {
				t.Fatalf("upsert produced undecodable frame: %v (in=%x out=%x)", err, data, out)
			}
			if h["probe"] != r {
				t.Fatalf("upsert lost entry: %v", h["probe"])
			}
		} else if !bytes.Equal(cp, data) {
			t.Fatalf("declined upsert mutated buffer: %x -> %x", data, cp)
		}

		cp = append([]byte(nil), data...)
		if out, ok := EvictOldestHistoryEntry(cp, "keep"); ok {
			if _, err := DecodeHistory(out); err != nil {
				t.Fatalf("evict produced undecodable frame: %v (in=%x out=%x)", err, data, out)
			}
		} else if !bytes.Equal(cp, data) {
			t.Fatalf("declined evict mutated buffer: %x -> %x", data, cp)
		}
	})
}

func FuzzListDelta(f *testing.F) {
	lb := EncodeList(List{{Item: "x", Score: 2}, {Item: "yy", Score: 1}})
	f.Add(lb, 1.5, 5)
	f.Add(lb, 0.0, 2)
	f.Add(lb[:len(lb)-3], 3.0, 1)
	f.Add([]byte(`[]`), 1.0, 3)
	f.Add([]byte{tagBinary, 'L', 1, 127}, 2.0, 0)
	f.Fuzz(func(t *testing.T, data []byte, score float64, k int) {
		if k < -1 {
			k = -1
		}
		if k > 200 {
			k %= 200
		}
		cp := append([]byte(nil), data...)
		out, _, ok := MergeListEntry(cp, "probe", score, k)
		if !ok {
			if !bytes.Equal(cp, data) {
				t.Fatalf("declined merge mutated buffer: %x -> %x", data, cp)
			}
			return
		}
		l, err := DecodeList(out)
		if err != nil {
			t.Fatalf("merge produced undecodable frame: %v (in=%x out=%x)", err, data, out)
		}
		// A positive-score merge bounds the list at k. (Descending order
		// is only guaranteed for ordered input — the equivalence test
		// covers it; a fuzzed frame may be valid but unordered.)
		if k >= 0 && len(l) > k && score > 0 {
			t.Fatalf("merge exceeded k=%d: %d entries", k, len(l))
		}
	})
}

func FuzzDecodeFloat(f *testing.F) {
	f.Add([]byte(nil))
	f.Add(EncodeFloat(1.5))
	f.Add([]byte("1.5"))
	f.Fuzz(func(t *testing.T, data []byte) {
		v, err := DecodeFloat(data)
		if err != nil {
			return
		}
		cp := append([]byte(nil), data...)
		if PatchFloat(cp, v) {
			if v2, err := DecodeFloat(cp); err != nil || (v2 != v && !(v != v)) {
				t.Fatalf("patch round trip: %v %v", v2, err)
			}
		}
	})
}
