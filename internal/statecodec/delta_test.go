package statecodec

import (
	"bytes"
	"math"
	"math/rand"
	"testing"

	"tencentrec/internal/core"
)

// refMergeList is the reference semantics the delta path must match
// byte-for-byte: the decode→mutate→re-encode pipeline used before
// MergeListEntry existed (mirrors topology.updateStoredList).
func refMergeList(l List, item string, score float64, k int) (List, float64) {
	for i, sc := range l {
		if sc.Item == item {
			l = append(l[:i], l[i+1:]...)
			break
		}
	}
	if score > 0 {
		pos := len(l)
		for i, sc := range l {
			if score > sc.Score {
				pos = i
				break
			}
		}
		l = append(l, core.ScoredItem{})
		copy(l[pos+1:], l[pos:])
		l[pos] = core.ScoredItem{Item: item, Score: score}
		if len(l) > k {
			l = l[:k]
		}
	}
	threshold := 0.0
	if len(l) >= k && k > 0 {
		threshold = l[len(l)-1].Score
	}
	return l, threshold
}

func histEqual(a, b History) bool {
	if len(a) != len(b) {
		return false
	}
	for k, v := range a {
		if b[k] != v {
			return false
		}
	}
	return true
}

func TestMergeListEntryEquivalence(t *testing.T) {
	rng := rand.New(rand.NewSource(9))
	items := []string{"a", "b", "c", "dd", "eee", "ffff", "g", "hh", "iii", "jjjj", "k1", "k2"}
	for trial := 0; trial < 400; trial++ {
		k := rng.Intn(6) // 0..5; k=0 truncates to empty, matching updateStoredList
		buf := EncodeList(nil)
		var ref List
		for op := 0; op < 30; op++ {
			item := items[rng.Intn(len(items))]
			score := 0.0
			switch rng.Intn(5) {
			case 0: // removal (non-positive score)
				score = 0
			case 1: // duplicate scores to exercise tie ordering
				score = 0.5
			default:
				score = math.Round(rng.Float64()*1000) / 1000
			}
			out, thr, ok := MergeListEntry(buf, item, score, k)
			var refThr float64
			ref, refThr = refMergeList(ref, item, score, k)
			want := EncodeList(ref)
			if !ok {
				// Fast path declined: buffer must be unchanged, and the
				// caller re-encodes via the reference path.
				buf = want
				continue
			}
			buf = out
			if !bytes.Equal(buf, want) {
				t.Fatalf("trial %d op %d (item=%q score=%v k=%d): merge bytes diverge\n got %x\nwant %x",
					trial, op, item, score, k, buf, want)
			}
			if thr != refThr {
				t.Fatalf("trial %d op %d: threshold = %v, want %v", trial, op, thr, refThr)
			}
		}
	}
}

func TestMergeListEntryDeclines(t *testing.T) {
	long := string(bytes.Repeat([]byte{'x'}, maxMergeItem+1))
	buf := EncodeList(List{{Item: "a", Score: 1}})
	orig := append([]byte(nil), buf...)
	if _, _, ok := MergeListEntry(buf, long, 2, 5); ok {
		t.Fatal("expected decline for oversized item")
	}
	if !bytes.Equal(buf, orig) {
		t.Fatal("declined merge mutated the buffer")
	}
	if _, _, ok := MergeListEntry(buf, "b", 2, -1); ok {
		t.Fatal("expected decline for negative k")
	}
	if _, _, ok := MergeListEntry([]byte(`{"legacy":"json"}`), "b", 2, 5); ok {
		t.Fatal("expected decline for legacy encoding")
	}
	// n would exceed the single-byte count window.
	big := make(List, maxFastEntries)
	for i := range big {
		big[i] = core.ScoredItem{Item: string(rune('a'+i%26)) + string(rune('a'+i/26)), Score: float64(1000 - i)}
	}
	bbuf := EncodeList(big)
	if _, _, ok := MergeListEntry(bbuf, "zz", 2000, 0); ok {
		t.Fatal("expected decline when count would exceed the fast window")
	}
}

func TestHistoryDeltaEquivalence(t *testing.T) {
	rng := rand.New(rand.NewSource(17))
	items := []string{"i1", "i2", "i3", "longitemname4", "i5", "i6", "i7", "i8"}
	for trial := 0; trial < 300; trial++ {
		buf := EncodeHistory(nil)
		ref := History{}
		for op := 0; op < 40; op++ {
			item := items[rng.Intn(len(items))]
			r := Rating{
				Rating:  math.Round(rng.Float64()*100) / 100,
				TS:      rng.Int63n(1 << 40),
				Session: rng.Int63n(1 << 20),
			}
			out, ok := UpsertHistoryEntry(buf, item, r)
			if !ok {
				t.Fatalf("trial %d op %d: unexpected upsert decline at %d entries", trial, op, len(ref))
			}
			buf = out
			ref[item] = r

			got, err := DecodeHistory(buf)
			if err != nil {
				t.Fatalf("trial %d op %d: decode after upsert: %v", trial, op, err)
			}
			if !histEqual(got, ref) {
				t.Fatalf("trial %d op %d: decoded history diverges\n got %v\nwant %v", trial, op, got, ref)
			}

			if fr, found, ok := FindHistoryEntry(buf, item); !ok || !found || fr != r {
				t.Fatalf("trial %d op %d: FindHistoryEntry = (%v,%v,%v), want (%v,true,true)",
					trial, op, fr, found, ok, r)
			}
			if n, ok := HistoryLen(buf); !ok || n != len(ref) {
				t.Fatalf("trial %d op %d: HistoryLen = (%d,%v), want (%d,true)", trial, op, n, ok, len(ref))
			}
		}
	}
}

func TestEvictOldestHistoryEntry(t *testing.T) {
	buf := EncodeHistory(nil)
	entries := []struct {
		item string
		ts   int64
	}{{"a", 50}, {"b", 10}, {"c", 30}, {"d", 20}}
	for _, e := range entries {
		var ok bool
		buf, ok = AppendHistoryEntry(buf, e.item, Rating{Rating: 1, TS: e.ts, Session: 1})
		if !ok {
			t.Fatalf("append %q declined", e.item)
		}
	}
	// Evict mutates in place: work on copies so each case sees the
	// original bytes.
	orig := append([]byte(nil), buf...)

	// Oldest is b(10); with keep="b" the oldest evictable is d(20).
	out, ok := EvictOldestHistoryEntry(append([]byte(nil), orig...), "b")
	if !ok {
		t.Fatal("evict declined")
	}
	got, err := DecodeHistory(out)
	if err != nil {
		t.Fatal(err)
	}
	if _, has := got["d"]; has {
		t.Fatalf("expected d evicted, have %v", got)
	}
	if len(got) != 3 {
		t.Fatalf("expected 3 entries after evict, have %v", got)
	}
	// Without keep protection the true oldest goes.
	out2, ok := EvictOldestHistoryEntry(append([]byte(nil), orig...), "")
	if !ok {
		t.Fatal("evict declined")
	}
	got2, _ := DecodeHistory(out2)
	if _, has := got2["b"]; has {
		t.Fatalf("expected b evicted, have %v", got2)
	}
}

func TestHistoryCountWidthBoundary(t *testing.T) {
	// Build a history with exactly 127 entries: the count uvarint is one
	// byte, and appending the 128th crosses to a two-byte count. The
	// width-preserving fast path must decline rather than corrupt.
	buf := EncodeHistory(nil)
	for i := 0; i < 127; i++ {
		var ok bool
		buf, ok = AppendHistoryEntry(buf, benchItemID(i), Rating{Rating: 1, TS: int64(i), Session: 1})
		if !ok {
			t.Fatalf("append %d declined", i)
		}
	}
	orig := append([]byte(nil), buf...)
	if out, ok := AppendHistoryEntry(buf, "boundary", Rating{Rating: 1, TS: 1, Session: 1}); ok {
		// Count widths 1→2 may be supported; if so the result must decode.
		if n, _ := HistoryLen(out); n != 128 {
			t.Fatalf("append across boundary: len=%d", n)
		}
	} else if !bytes.Equal(buf, orig) {
		t.Fatal("declined append mutated the buffer")
	}

	// Two-byte counts (128..16383) must keep working in place.
	h := History{}
	for i := 0; i < 200; i++ {
		h[benchItemID(i)] = Rating{Rating: 1, TS: int64(i), Session: 1}
	}
	big := EncodeHistory(h)
	out, ok := UpsertHistoryEntry(big, benchItemID(42), Rating{Rating: 2, TS: 999, Session: 3})
	if !ok {
		t.Fatal("in-width upsert on 200-entry history declined")
	}
	got, err := DecodeHistory(out)
	if err != nil {
		t.Fatal(err)
	}
	if got[benchItemID(42)] != (Rating{Rating: 2, TS: 999, Session: 3}) {
		t.Fatalf("upsert lost: %v", got[benchItemID(42)])
	}
	if len(got) != 200 {
		t.Fatalf("len=%d want 200", len(got))
	}
}

func TestPatchFloat(t *testing.T) {
	b := EncodeFloat(1.5)
	if !PatchFloat(b, 2.75) {
		t.Fatal("patch declined on 8-byte buffer")
	}
	if v, err := DecodeFloat(b); err != nil || v != 2.75 {
		t.Fatalf("decode after patch = (%v,%v)", v, err)
	}
	if PatchFloat([]byte("123456789"), 1) {
		t.Fatal("patch accepted a 9-byte buffer")
	}
	if PatchFloat(nil, 1) {
		t.Fatal("patch accepted nil")
	}
}

// --- zero-allocation gates -------------------------------------------------

func TestMergeListEntryZeroAlloc(t *testing.T) {
	l := List{}
	for i := 0; i < 20; i++ {
		l = append(l, core.ScoredItem{Item: benchItemID(i), Score: float64(100 - i)})
	}
	buf := EncodeList(l)
	buf = append(buf, 0)[:len(buf)] // spare capacity so in-place growth never reallocates
	allocs := testing.AllocsPerRun(200, func() {
		out, _, ok := MergeListEntry(buf, benchItemID(7), 95.5, 20)
		if !ok {
			t.Fatal("merge declined")
		}
		buf = out
	})
	if allocs != 0 {
		t.Fatalf("MergeListEntry in-place: %v allocs/op, want 0", allocs)
	}
}

func TestUpsertHistoryEntryZeroAlloc(t *testing.T) {
	buf := EncodeHistory(nil)
	for i := 0; i < 30; i++ {
		buf, _ = AppendHistoryEntry(buf, benchItemID(i), Rating{Rating: 1, TS: int64(i), Session: 1})
	}
	r := Rating{Rating: 2, TS: 77, Session: 2}
	allocs := testing.AllocsPerRun(200, func() {
		out, ok := UpsertHistoryEntry(buf, benchItemID(11), r)
		if !ok {
			t.Fatal("upsert declined")
		}
		buf = out
	})
	if allocs != 0 {
		t.Fatalf("UpsertHistoryEntry existing-item: %v allocs/op, want 0", allocs)
	}
}

func TestFindIterZeroAlloc(t *testing.T) {
	buf := EncodeHistory(nil)
	for i := 0; i < 30; i++ {
		buf, _ = AppendHistoryEntry(buf, benchItemID(i), Rating{Rating: 1, TS: int64(i), Session: 1})
	}
	allocs := testing.AllocsPerRun(200, func() {
		if _, found, ok := FindHistoryEntry(buf, benchItemID(29)); !ok || !found {
			t.Fatal("find failed")
		}
		it, _ := IterHistory(buf)
		for {
			if _, _, more := it.Next(); !more {
				break
			}
		}
	})
	if allocs != 0 {
		t.Fatalf("Find/Iter: %v allocs/op, want 0", allocs)
	}
}

// --- delta vs full microbenchmarks -----------------------------------------

func benchHistoryBuf(n int) []byte {
	buf := EncodeHistory(nil)
	for i := 0; i < n; i++ {
		buf, _ = AppendHistoryEntry(buf, benchItemID(i), Rating{Rating: 1, TS: int64(i), Session: 1})
	}
	return buf
}

func BenchmarkHistoryUpsertDelta(b *testing.B) {
	buf := benchHistoryBuf(100)
	r := Rating{Rating: 2, TS: 5, Session: 2}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		out, ok := UpsertHistoryEntry(buf, benchItemID(50), r)
		if !ok {
			b.Fatal("declined")
		}
		buf = out
	}
}

func BenchmarkHistoryUpsertFull(b *testing.B) {
	buf := benchHistoryBuf(100)
	r := Rating{Rating: 2, TS: 5, Session: 2}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		h, err := DecodeHistory(buf)
		if err != nil {
			b.Fatal(err)
		}
		h[benchItemID(50)] = r
		buf = EncodeHistory(h)
	}
}

func benchListBuf(n int) []byte {
	l := make(List, 0, n)
	for i := 0; i < n; i++ {
		l = append(l, core.ScoredItem{Item: benchItemID(i), Score: float64(1000 - i)})
	}
	return EncodeList(l)
}

func BenchmarkListMergeDelta(b *testing.B) {
	buf := benchListBuf(20)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		out, _, ok := MergeListEntry(buf, benchItemID(10), 995.5, 20)
		if !ok {
			b.Fatal("declined")
		}
		buf = out
	}
}

func BenchmarkListMergeFull(b *testing.B) {
	buf := benchListBuf(20)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		l, err := DecodeList(buf)
		if err != nil {
			b.Fatal(err)
		}
		l, _ = refMergeList(l, benchItemID(10), 995.5, 20)
		buf = EncodeList(l)
	}
}
