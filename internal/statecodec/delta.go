// delta.go — in-place and append fast paths over the encoded binary
// frames, so a hot-path update that touches one entry patches the
// stored bytes instead of decode-all → mutate → re-encode-all.
//
// Every function here is a *fast path*: it returns ok=false (leaving
// the buffer unchanged) whenever the value is legacy JSON, malformed,
// or the edit would change the byte width of the uvarint entry count —
// the caller then falls back to the full Decode/Encode pair, which
// remains the source of truth for the format. The frames these
// functions produce are ordinary version-1 frames: nothing here changes
// the wire format, only who writes the bytes.
//
// Equivalence contract (pinned by delta_test.go): a buffer produced by
// a fast-path edit decodes to exactly the value the decode→mutate→
// re-encode path would have produced, and for lists — whose encoder is
// order-preserving — the bytes themselves are identical.
package statecodec

import (
	"encoding/binary"
	"math"
)

// maxFastEntries bounds in-place list edits to frames whose uvarint
// entry count fits in one byte (and whose offsets fit the stack arrays
// MergeListEntry scans into). Top-K lists are bounded at k ≤ 127 in any
// realistic configuration; larger lists take the full re-encode path.
const maxFastEntries = 127

// maxHistEntries bounds history edits: counts up to two uvarint bytes
// (the default MaxUserHistory of 200 sits in the two-byte range). Edits
// that would cross a uvarint width boundary (127→128, 16383→16384)
// fall back; that happens at most once per key per crossing.
const maxHistEntries = 16383

// ratingBytes is the fixed-width tail of a history entry: 8-byte
// rating + 8-byte timestamp + 8-byte session.
const ratingBytes = 24

// PatchFloat overwrites an encoded float scalar in place. It returns
// false (buffer untouched) unless b is exactly the 8-byte raw layout
// EncodeFloat produces.
func PatchFloat(b []byte, v float64) bool {
	if len(b) != 8 {
		return false
	}
	binary.LittleEndian.PutUint64(b, math.Float64bits(v))
	return true
}

// uvarintLen returns the encoded width of n.
func uvarintLen(n uint64) int {
	w := 1
	for n >= 0x80 {
		n >>= 7
		w++
	}
	return w
}

// histBody validates a binary history header and returns the entry
// count and the payload offset (just past the count). ok=false for
// legacy JSON, other types, unknown versions, or oversized counts.
func histBody(b []byte) (n int, base int, ok bool) {
	if len(b) < 4 || b[0] != tagBinary || b[1] != typeHistory || b[2] != version {
		return 0, 0, false
	}
	c, sz := binary.Uvarint(b[3:])
	if sz <= 0 || c > maxHistEntries {
		return 0, 0, false
	}
	return int(c), 3 + sz, true
}

// setHistCount rewrites the count prefix in place. ok=false when the
// new count needs a different uvarint width (the payload would shift).
func setHistCount(b []byte, base, n int) bool {
	if uvarintLen(uint64(n)) != base-3 {
		return false
	}
	binary.PutUvarint(b[3:], uint64(n))
	return true
}

// HistoryIter walks the entries of an encoded binary history without
// decoding it to a map. Zero-allocation: returned item slices alias the
// underlying buffer and are only valid until the buffer is modified.
type HistoryIter struct {
	rest    []byte
	n, i    int
	off     int  // offset of the next entry within the original buffer
	corrupt bool // payload ended early or had trailing garbage
}

// IterHistory starts an iteration over an encoded binary history.
// ok=false means the value is not an iterable binary history (legacy
// JSON, wrong type, oversized) and the caller must DecodeHistory.
func IterHistory(b []byte) (HistoryIter, bool) {
	n, base, ok := histBody(b)
	if !ok {
		return HistoryIter{}, false
	}
	return HistoryIter{rest: b[base:], n: n, off: base}, true
}

// Next returns the next entry. ok=false means the iteration is done —
// check Corrupt to distinguish exhaustion from a malformed payload.
func (it *HistoryIter) Next() (item []byte, r Rating, ok bool) {
	if it.i >= it.n {
		// A well-formed frame consumes the payload exactly.
		if len(it.rest) != 0 {
			it.corrupt = true
		}
		return nil, Rating{}, false
	}
	l, sz := binary.Uvarint(it.rest)
	if sz <= 0 || uint64(len(it.rest)-sz) < l+ratingBytes {
		it.corrupt = true
		return nil, Rating{}, false
	}
	item = it.rest[sz : sz+int(l)]
	fixed := it.rest[sz+int(l):]
	r.Rating = math.Float64frombits(binary.LittleEndian.Uint64(fixed))
	r.TS = int64(binary.LittleEndian.Uint64(fixed[8:]))
	r.Session = int64(binary.LittleEndian.Uint64(fixed[16:]))
	step := sz + int(l) + ratingBytes
	it.rest = it.rest[step:]
	it.off += step
	it.i++
	return item, r, true
}

// Corrupt reports whether iteration stopped on a malformed payload
// rather than clean exhaustion.
func (it *HistoryIter) Corrupt() bool { return it.corrupt }

// HistoryLen returns the entry count of an encoded binary history
// without decoding it. ok=false for legacy/oversized frames.
func HistoryLen(b []byte) (int, bool) {
	n, _, ok := histBody(b)
	return n, ok
}

// findHistoryEntry scans for item and returns the offset of its
// fixed-width rating block within b. ok=false means the frame is not
// patchable (including corrupt payloads discovered during the scan).
func findHistoryEntry(b []byte, item string) (fixedOff int, r Rating, found bool, ok bool) {
	it, ok := IterHistory(b)
	if !ok {
		return 0, Rating{}, false, false
	}
	for {
		name, rr, more := it.Next()
		if !more {
			break
		}
		if !found && string(name) == item {
			found, r = true, rr
			fixedOff = it.off - ratingBytes
		}
	}
	if it.Corrupt() {
		return 0, Rating{}, false, false
	}
	return fixedOff, r, found, true
}

// FindHistoryEntry looks up one item in an encoded binary history
// without decoding it. ok=false means the caller must DecodeHistory.
func FindHistoryEntry(b []byte, item string) (r Rating, found bool, ok bool) {
	_, r, found, ok = findHistoryEntry(b, item)
	return r, found, ok
}

// putRating writes the fixed-width rating block at off.
func putRating(b []byte, off int, r Rating) {
	binary.LittleEndian.PutUint64(b[off:], math.Float64bits(r.Rating))
	binary.LittleEndian.PutUint64(b[off+8:], uint64(r.TS))
	binary.LittleEndian.PutUint64(b[off+16:], uint64(r.Session))
}

// AppendHistoryEntry appends a new entry to an encoded binary history
// and bumps the count. The caller asserts item is not already present
// (use UpsertHistoryEntry otherwise). ok=false — buffer unchanged —
// when the frame is not patchable, its payload is malformed, or the
// count bump would change the uvarint width.
func AppendHistoryEntry(b []byte, item string, r Rating) ([]byte, bool) {
	n, base, ok := histBody(b)
	if !ok || n+1 > maxHistEntries || uvarintLen(uint64(n+1)) != base-3 {
		return b, false
	}
	// Verify the existing payload is well-formed before growing it:
	// appending to a torn frame would compound the corruption.
	rest := b[base:]
	for i := 0; i < n; i++ {
		l, sz := binary.Uvarint(rest)
		if sz <= 0 || uint64(len(rest)-sz) < l+ratingBytes {
			return b, false
		}
		rest = rest[sz+int(l)+ratingBytes:]
	}
	if len(rest) != 0 {
		return b, false
	}
	setHistCount(b, base, n+1)
	b = appendString(b, item)
	off := len(b)
	b = append(b, make([]byte, ratingBytes)...)
	putRating(b, off, r)
	return b, true
}

// UpsertHistoryEntry sets item's rating in an encoded binary history:
// an existing entry is patched in place (same bytes, new rating block),
// a new one is appended. ok=false — buffer unchanged — when the frame
// is not patchable; the caller falls back to decode → mutate →
// re-encode.
func UpsertHistoryEntry(b []byte, item string, r Rating) ([]byte, bool) {
	fixedOff, _, found, ok := findHistoryEntry(b, item)
	if !ok {
		return b, false
	}
	if found {
		putRating(b, fixedOff, r)
		return b, true
	}
	return AppendHistoryEntry(b, item, r)
}

// EvictOldestHistoryEntry removes the entry with the smallest timestamp
// whose item differs from keep (ties keep the first in encoded order),
// splicing the bytes out and decrementing the count. ok=false — buffer
// unchanged — when the frame is not patchable, no removable entry
// exists, or the count decrement would change the uvarint width.
func EvictOldestHistoryEntry(b []byte, keep string) ([]byte, bool) {
	n, base, ok := histBody(b)
	if !ok || n == 0 || uvarintLen(uint64(n-1)) != base-3 {
		return b, false
	}
	it, _ := IterHistory(b)
	oldStart, oldEnd := -1, -1
	var oldTS int64
	for {
		start := it.off
		name, r, more := it.Next()
		if !more {
			break
		}
		if string(name) == keep {
			continue
		}
		if oldStart < 0 || r.TS < oldTS {
			oldStart, oldEnd, oldTS = start, it.off, r.TS
		}
	}
	if it.Corrupt() || oldStart < 0 {
		return b, false
	}
	copy(b[oldStart:], b[oldEnd:])
	b = b[:len(b)-(oldEnd-oldStart)]
	setHistCount(b, base, n-1)
	return b, true
}

// listBody validates a binary list header with a single-byte count.
func listBody(b []byte) (n int, base int, ok bool) {
	if len(b) < 4 || b[0] != tagBinary || b[1] != typeList || b[2] != version {
		return 0, 0, false
	}
	c := b[3]
	if c > maxFastEntries {
		return 0, 0, false
	}
	return int(c), 4, true
}

// maxMergeItem bounds the item length MergeListEntry handles in place
// (the rotate scratch is a stack array). Longer ids fall back.
const maxMergeItem = 240

// MergeListEntry applies one (item, score) update to an encoded scored
// list: any existing entry for item is removed, then — when score > 0 —
// the entry is inserted at its rank (descending score, ties after
// existing entries) and the list truncated to k (k must be >= 0). This
// is the byte-level equivalent of DecodeList → updateStoredList →
// EncodeList and produces identical bytes (the list encoder is
// order-preserving). threshold is the score of the k-th entry when the
// list is full, else 0. ok=false — buffer unchanged — when the frame is
// not patchable; the caller falls back to the full decode path.
func MergeListEntry(b []byte, item string, score float64, k int) (out []byte, threshold float64, ok bool) {
	n, base, ok := listBody(b)
	if !ok || k < 0 || len(item) > maxMergeItem {
		return b, 0, false
	}
	// Scan: absolute entry offsets (offs[i] .. offs[i+1]) and scores.
	var offs [maxFastEntries + 2]int32
	var scores [maxFastEntries + 1]float64
	rest := b[base:]
	off := base
	foundIdx := -1
	for i := 0; i < n; i++ {
		offs[i] = int32(off)
		l, sz := binary.Uvarint(rest)
		if sz <= 0 || uint64(len(rest)-sz) < l+8 {
			return b, 0, false
		}
		name := rest[sz : sz+int(l)]
		scores[i] = math.Float64frombits(binary.LittleEndian.Uint64(rest[sz+int(l):]))
		if foundIdx < 0 && string(name) == item {
			foundIdx = i
		}
		step := sz + int(l) + 8
		rest = rest[step:]
		off += step
	}
	if len(rest) != 0 {
		return b, 0, false
	}
	offs[n] = int32(off)

	if score > 0 && n-boolInt(foundIdx >= 0)+1 > maxFastEntries {
		return b, 0, false
	}

	// In-place fast case: the item is already present, keeps a positive
	// score, the stored list is within bounds, and its rank is stable —
	// overwrite the 8 score bytes and done. The rank test is strict
	// against the successor: on a score tie the reference re-insert
	// moves the entry after its equals, which only the general path
	// reproduces.
	if foundIdx >= 0 && score > 0 && k > 0 && n <= k &&
		(foundIdx == 0 || scores[foundIdx-1] >= score) &&
		(foundIdx == n-1 || score > scores[foundIdx+1]) {
		binary.LittleEndian.PutUint64(b[offs[foundIdx+1]-8:], math.Float64bits(score))
		if n >= k {
			threshold = math.Float64frombits(binary.LittleEndian.Uint64(b[len(b)-8:]))
		}
		return b, threshold, true
	}

	// General path: splice out, splice in, truncate — bounded memmoves
	// on a <=127-entry buffer, no allocation beyond append growth.
	wantInsert := score > 0
	if foundIdx >= 0 {
		s, e := offs[foundIdx], offs[foundIdx+1]
		remLen := e - s
		copy(b[s:], b[e:])
		b = b[:int32(len(b))-remLen]
		for i := foundIdx; i < n; i++ {
			offs[i] = offs[i+1] - remLen
			scores[i] = scores[i+1]
		}
		n--
	}
	if wantInsert {
		pos := n
		for i := 0; i < n; i++ {
			if score > scores[i] {
				pos = i
				break
			}
		}
		// An insert at rank >= k is dropped by the truncate below; skip
		// the splice (net effect: removal + truncate alone).
		if pos < k {
			// Encode the new entry at the tail, then rotate it into
			// position through a bounded stack scratch.
			insertAt := int(offs[pos])
			pre := len(b)
			b = binary.AppendUvarint(b, uint64(len(item)))
			b = append(b, item...)
			b = appendFloat(b, score)
			entLen := len(b) - pre
			var scratch [256]byte
			copy(scratch[:], b[pre:])
			copy(b[insertAt+entLen:], b[insertAt:pre])
			copy(b[insertAt:], scratch[:entLen])
			for i := n; i >= pos; i-- {
				offs[i+1] = offs[i] + int32(entLen)
				if i > pos {
					scores[i] = scores[i-1]
				}
			}
			offs[pos] = int32(insertAt)
			scores[pos] = score
			n++
		}
		if n > k {
			b = b[:offs[k]]
			n = k
		}
	}
	b[3] = byte(n)
	if n >= k && k > 0 && n > 0 {
		threshold = math.Float64frombits(binary.LittleEndian.Uint64(b[len(b)-8:]))
	}
	return b, threshold, true
}

func boolInt(v bool) int {
	if v {
		return 1
	}
	return 0
}
