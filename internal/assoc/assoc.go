// Package assoc implements TencentRec's association-rule based (AR)
// recommendation algorithm (§4, [24] in the paper), maintained
// incrementally over the action stream.
//
// A "transaction" is a user's set of distinct items interacted with
// inside the linked-time window. The engine keeps windowed support counts
// for items and item pairs and recommends by rule confidence:
// conf(i→j) = supp(i,j) / supp(i), subject to minimum support. Unlike the
// weighted CF counts, AR counts are occurrence counts — each user
// contributes at most 1 to supp(i,j) per co-occurrence episode — which is
// what makes rules interpretable as conditional probabilities.
package assoc

import (
	"sort"
	"time"

	"tencentrec/internal/core"
	"tencentrec/internal/window"
)

// Rule is one mined association rule with its statistics.
type Rule struct {
	// Antecedent → Consequent.
	Antecedent, Consequent string
	// Support is the pair's co-occurrence count in the window.
	Support float64
	// Confidence is Support / supp(Antecedent).
	Confidence float64
	// Lift is Confidence / P(Consequent); above 1 means positive
	// association beyond popularity.
	Lift float64
}

// Config parameterizes the AR engine.
type Config struct {
	// LinkedTime bounds co-occurrence: two items belong to the same
	// transaction when the same user touches both within this period.
	// Zero means unbounded.
	LinkedTime time.Duration
	// MinSupport is the minimum pair count for a rule to fire.
	// Default 2.
	MinSupport float64
	// MinConfidence filters weak rules. Default 0.05.
	MinConfidence float64
	// WindowSessions and SessionDuration window the counts.
	WindowSessions  int
	SessionDuration time.Duration
	// MaxUserHistory caps retained items per user. Default 100.
	MaxUserHistory int
}

func (c Config) withDefaults() Config {
	if c.MinSupport <= 0 {
		c.MinSupport = 2
	}
	if c.MinConfidence <= 0 {
		c.MinConfidence = 0.05
	}
	if c.WindowSessions > 0 && c.SessionDuration <= 0 {
		c.SessionDuration = time.Hour
	}
	if c.MaxUserHistory <= 0 {
		c.MaxUserHistory = 100
	}
	return c
}

type pairKey struct{ a, b string }

func makePair(p, q string) pairKey {
	if p < q {
		return pairKey{p, q}
	}
	return pairKey{q, p}
}

// Engine is the incremental AR recommender.
// It is not safe for concurrent use.
type Engine struct {
	cfg   Config
	clock window.Clock

	users      map[string]map[string]time.Time // user -> item -> last seen
	itemSupp   map[string]*window.Counter
	pairSupp   map[pairKey]*window.Counter
	totalUsers float64
}

// NewEngine returns an empty AR engine.
func NewEngine(cfg Config) *Engine {
	c := cfg.withDefaults()
	return &Engine{
		cfg:      c,
		clock:    window.Clock{Session: c.SessionDuration},
		users:    make(map[string]map[string]time.Time),
		itemSupp: make(map[string]*window.Counter),
		pairSupp: make(map[pairKey]*window.Counter),
	}
}

func (e *Engine) counter(m map[string]*window.Counter, k string) *window.Counter {
	c, ok := m[k]
	if !ok {
		c = window.NewCounter(e.cfg.WindowSessions)
		m[k] = c
	}
	return c
}

func (e *Engine) pairCounter(k pairKey) *window.Counter {
	c, ok := e.pairSupp[k]
	if !ok {
		c = window.NewCounter(e.cfg.WindowSessions)
		e.pairSupp[k] = c
	}
	return c
}

// Observe folds one action into the transaction state. A user's first
// touch of an item inside the linked window counts once toward item
// support and once toward each pair with the user's other recent items.
func (e *Engine) Observe(a core.Action) {
	session := e.clock.SessionOf(a.Time)
	h := e.users[a.User]
	if h == nil {
		h = make(map[string]time.Time)
		e.users[a.User] = h
		e.totalUsers++
	}
	if last, seen := h[a.Item]; seen {
		if e.cfg.LinkedTime <= 0 || a.Time.Sub(last) <= e.cfg.LinkedTime {
			// Repeat touch inside the same transaction: no new support.
			h[a.Item] = a.Time
			return
		}
		// The previous episode expired; this touch opens a new one.
	}
	e.counter(e.itemSupp, a.Item).Add(session, 1)
	for j, lastJ := range h {
		if j == a.Item {
			continue
		}
		if e.cfg.LinkedTime > 0 && a.Time.Sub(lastJ) > e.cfg.LinkedTime {
			continue
		}
		e.pairCounter(makePair(a.Item, j)).Add(session, 1)
	}
	h[a.Item] = a.Time
	if len(h) > e.cfg.MaxUserHistory {
		e.evictOldest(h, a.Item)
	}
}

func (e *Engine) evictOldest(h map[string]time.Time, keep string) {
	oldestItem := ""
	var oldest time.Time
	for item, tm := range h {
		if item == keep {
			continue
		}
		if oldestItem == "" || tm.Before(oldest) {
			oldestItem = item
			oldest = tm
		}
	}
	if oldestItem != "" {
		delete(h, oldestItem)
	}
}

// Rules mines the current rules with antecedent item, strongest first.
func (e *Engine) Rules(item string, now time.Time, n int) []Rule {
	session := e.clock.SessionOf(now)
	suppI := 0.0
	if c, ok := e.itemSupp[item]; ok {
		suppI = c.Sum(session)
	}
	if suppI <= 0 {
		return nil
	}
	var out []Rule
	for key, pc := range e.pairSupp {
		if key.a != item && key.b != item {
			continue
		}
		supp := pc.Sum(session)
		if supp < e.cfg.MinSupport {
			continue
		}
		other := key.a
		if other == item {
			other = key.b
		}
		conf := supp / suppI
		if conf < e.cfg.MinConfidence {
			continue
		}
		lift := 0.0
		if oc, ok := e.itemSupp[other]; ok && e.totalUsers > 0 {
			pOther := oc.Sum(session) / e.totalUsers
			if pOther > 0 {
				lift = conf / pOther
			}
		}
		out = append(out, Rule{Antecedent: item, Consequent: other, Support: supp, Confidence: conf, Lift: lift})
	}
	sort.Slice(out, func(i, j int) bool {
		if out[i].Confidence != out[j].Confidence {
			return out[i].Confidence > out[j].Confidence
		}
		return out[i].Consequent < out[j].Consequent
	})
	if n > 0 && len(out) > n {
		out = out[:n]
	}
	return out
}

// Recommend unions the rules fired by the user's recent items and ranks
// consequents by their best confidence.
func (e *Engine) Recommend(user string, now time.Time, n int) []core.ScoredItem {
	h := e.users[user]
	if h == nil {
		return nil
	}
	best := make(map[string]float64)
	for item, last := range h {
		if e.cfg.LinkedTime > 0 && now.Sub(last) > e.cfg.LinkedTime {
			continue
		}
		for _, r := range e.Rules(item, now, 0) {
			if _, owned := h[r.Consequent]; owned {
				continue
			}
			if r.Confidence > best[r.Consequent] {
				best[r.Consequent] = r.Confidence
			}
		}
	}
	out := make([]core.ScoredItem, 0, len(best))
	for item, conf := range best {
		out = append(out, core.ScoredItem{Item: item, Score: conf})
	}
	sort.Slice(out, func(i, j int) bool {
		if out[i].Score != out[j].Score {
			return out[i].Score > out[j].Score
		}
		return out[i].Item < out[j].Item
	})
	if n > 0 && len(out) > n {
		out = out[:n]
	}
	return out
}
