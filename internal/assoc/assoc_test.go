package assoc

import (
	"fmt"
	"math"
	"testing"
	"time"

	"tencentrec/internal/core"
)

var t0 = time.Date(2015, 5, 31, 0, 0, 0, 0, time.UTC)

func obs(e *Engine, user, item string, at time.Duration) {
	e.Observe(core.Action{User: user, Item: item, Type: core.ActionClick, Time: t0.Add(at)})
}

func TestRuleConfidence(t *testing.T) {
	e := NewEngine(Config{MinSupport: 2, MinConfidence: 0.01})
	// 4 users touch bread; 3 of them also butter.
	for i := 0; i < 4; i++ {
		obs(e, fmt.Sprintf("u%d", i), "bread", time.Duration(i)*time.Minute)
	}
	for i := 0; i < 3; i++ {
		obs(e, fmt.Sprintf("u%d", i), "butter", time.Duration(i)*time.Minute+time.Second)
	}
	rules := e.Rules("bread", t0.Add(time.Hour), 10)
	if len(rules) != 1 {
		t.Fatalf("rules = %v", rules)
	}
	r := rules[0]
	if r.Consequent != "butter" || math.Abs(r.Confidence-0.75) > 1e-9 {
		t.Fatalf("rule = %+v, want butter conf 0.75", r)
	}
	if r.Support != 3 {
		t.Fatalf("support = %v, want 3", r.Support)
	}
	if r.Lift <= 0 {
		t.Fatalf("lift = %v", r.Lift)
	}
}

func TestMinSupportFilters(t *testing.T) {
	e := NewEngine(Config{MinSupport: 3, MinConfidence: 0.01})
	obs(e, "u1", "a", 0)
	obs(e, "u1", "b", time.Second)
	if rules := e.Rules("a", t0.Add(time.Minute), 10); len(rules) != 0 {
		t.Fatalf("rule below min support fired: %v", rules)
	}
}

func TestRepeatTouchDoesNotInflateSupport(t *testing.T) {
	e := NewEngine(Config{MinSupport: 1, MinConfidence: 0.01})
	obs(e, "u1", "a", 0)
	obs(e, "u1", "b", time.Second)
	obs(e, "u1", "b", 2*time.Second) // same transaction, no new support
	obs(e, "u1", "a", 3*time.Second)
	rules := e.Rules("a", t0.Add(time.Minute), 10)
	if len(rules) != 1 || rules[0].Support != 1 {
		t.Fatalf("rules = %v, want single support-1 rule", rules)
	}
}

func TestLinkedTimeSeparatesTransactions(t *testing.T) {
	e := NewEngine(Config{LinkedTime: time.Hour, MinSupport: 1, MinConfidence: 0.01})
	obs(e, "u1", "a", 0)
	obs(e, "u1", "b", 2*time.Hour) // outside linked time: no pair
	if rules := e.Rules("a", t0.Add(3*time.Hour), 10); len(rules) != 0 {
		t.Fatalf("cross-transaction pair created: %v", rules)
	}
}

func TestRecommendRanksByConfidence(t *testing.T) {
	e := NewEngine(Config{MinSupport: 1, MinConfidence: 0.01})
	// a→b is stronger than a→c.
	for i := 0; i < 4; i++ {
		u := fmt.Sprintf("u%d", i)
		obs(e, u, "a", time.Duration(i)*time.Minute)
		obs(e, u, "b", time.Duration(i)*time.Minute+time.Second)
	}
	obs(e, "u0", "c", 10*time.Second)
	obs(e, "x", "a", 20*time.Minute)
	recs := e.Recommend("x", t0.Add(21*time.Minute), 5)
	if len(recs) < 2 || recs[0].Item != "b" {
		t.Fatalf("recs = %v, want b first", recs)
	}
	if recs[0].Score <= recs[1].Score {
		t.Fatalf("ranking not by confidence: %v", recs)
	}
}

func TestRecommendSkipsOwnedItems(t *testing.T) {
	e := NewEngine(Config{MinSupport: 1, MinConfidence: 0.01})
	obs(e, "u1", "a", 0)
	obs(e, "u1", "b", time.Second)
	obs(e, "x", "a", time.Minute)
	obs(e, "x", "b", time.Minute+time.Second)
	recs := e.Recommend("x", t0.Add(2*time.Minute), 5)
	for _, r := range recs {
		if r.Item == "a" || r.Item == "b" {
			t.Fatalf("owned item recommended: %v", recs)
		}
	}
}

func TestUnknownUser(t *testing.T) {
	e := NewEngine(Config{})
	if recs := e.Recommend("ghost", t0, 5); recs != nil {
		t.Fatalf("recs for unknown user = %v", recs)
	}
}

func TestWindowedSupportExpires(t *testing.T) {
	e := NewEngine(Config{MinSupport: 1, MinConfidence: 0.01, WindowSessions: 2, SessionDuration: time.Hour})
	obs(e, "u1", "a", 0)
	obs(e, "u1", "b", time.Second)
	if rules := e.Rules("a", t0.Add(time.Minute), 10); len(rules) != 1 {
		t.Fatalf("fresh rule missing: %v", rules)
	}
	if rules := e.Rules("a", t0.Add(6*time.Hour), 10); len(rules) != 0 {
		t.Fatalf("expired rule still firing: %v", rules)
	}
}

func TestHistoryEviction(t *testing.T) {
	e := NewEngine(Config{MaxUserHistory: 3, MinSupport: 1})
	for i := 0; i < 10; i++ {
		obs(e, "u", fmt.Sprintf("i%d", i), time.Duration(i)*time.Minute)
	}
	if len(e.users["u"]) > 4 {
		t.Fatalf("history size %d, cap 3", len(e.users["u"]))
	}
}
