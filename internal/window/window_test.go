package window

import (
	"testing"
	"testing/quick"
	"time"
)

func TestUnwindowedCounterIsLifetimeSum(t *testing.T) {
	c := NewCounter(0)
	c.Add(1, 2)
	c.Add(100, 3)
	c.Add(5, -1)
	if got := c.Sum(1000); got != 4 {
		t.Fatalf("Sum = %v, want 4", got)
	}
}

func TestWindowedSumWithinWindow(t *testing.T) {
	c := NewCounter(3)
	c.Add(10, 1)
	c.Add(11, 2)
	c.Add(12, 4)
	if got := c.Sum(12); got != 7 {
		t.Fatalf("Sum(12) = %v, want 7", got)
	}
}

func TestOldSessionsExpire(t *testing.T) {
	c := NewCounter(3)
	c.Add(10, 1)
	c.Add(11, 2)
	c.Add(12, 4)
	c.Add(13, 8) // session 10 falls out
	if got := c.Sum(13); got != 14 {
		t.Fatalf("Sum(13) = %v, want 14", got)
	}
	c.Add(20, 16) // everything else falls out
	if got := c.Sum(20); got != 16 {
		t.Fatalf("Sum(20) = %v, want 16", got)
	}
}

func TestSumAtLaterCurrentExcludesExpired(t *testing.T) {
	c := NewCounter(2)
	c.Add(5, 3)
	if got := c.Sum(5); got != 3 {
		t.Fatalf("Sum(5) = %v, want 3", got)
	}
	if got := c.Sum(6); got != 3 {
		t.Fatalf("Sum(6) = %v, want 3 (still in window)", got)
	}
	if got := c.Sum(7); got != 0 {
		t.Fatalf("Sum(7) = %v, want 0 (expired)", got)
	}
}

func TestLateEventsLandInOldestSession(t *testing.T) {
	c := NewCounter(3)
	c.Add(12, 1)
	c.Add(5, 2) // far in the past: folded into oldest retained session
	if got := c.Sum(12); got != 3 {
		t.Fatalf("Sum(12) = %v, want 3", got)
	}
}

func TestReset(t *testing.T) {
	c := NewCounter(3)
	c.Add(1, 5)
	c.Reset()
	if got := c.Sum(1); got != 0 {
		t.Fatalf("Sum after Reset = %v", got)
	}
	c.Add(2, 1)
	if got := c.Sum(2); got != 1 {
		t.Fatalf("Sum after Reset+Add = %v, want 1", got)
	}
}

func TestClockSessionOf(t *testing.T) {
	c := Clock{Session: time.Hour}
	t0 := time.Unix(0, 0)
	if s := c.SessionOf(t0); s != 0 {
		t.Fatalf("SessionOf(epoch) = %d", s)
	}
	if s := c.SessionOf(t0.Add(59 * time.Minute)); s != 0 {
		t.Fatalf("SessionOf(59m) = %d, want 0", s)
	}
	if s := c.SessionOf(t0.Add(61 * time.Minute)); s != 1 {
		t.Fatalf("SessionOf(61m) = %d, want 1", s)
	}
	zero := Clock{}
	if s := zero.SessionOf(t0.Add(time.Hour)); s != 0 {
		t.Fatalf("zero clock SessionOf = %d, want 0", s)
	}
}

// TestWindowEqualsBruteForceProperty checks the ring implementation
// against a brute-force per-session map.
func TestWindowEqualsBruteForceProperty(t *testing.T) {
	type ev struct {
		Step  uint8 // advances the current session by Step%4
		Delta int8
	}
	f := func(w uint8, evs []ev) bool {
		W := int(w%8) + 1
		c := NewCounter(W)
		perSession := make(map[int64]float64)
		cur := int64(100)
		for _, e := range evs {
			cur += int64(e.Step % 4)
			c.Add(cur, float64(e.Delta))
			// Brute force: fold too-old events like the ring does.
			s := cur
			perSession[s] += float64(e.Delta)
			want := brute(perSession, cur, W)
			if got := c.Sum(cur); !close(got, want) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

func brute(per map[int64]float64, current int64, w int) float64 {
	var total float64
	for s, v := range per {
		if s > current-int64(w) && s <= current {
			total += v
		}
	}
	return total
}

func close(a, b float64) bool {
	d := a - b
	return d < 1e-9 && d > -1e-9
}

func TestCounterCodecRoundTripProperty(t *testing.T) {
	type ev struct {
		Step  uint8
		Delta int8
	}
	f := func(w uint8, evs []ev) bool {
		W := int(w % 6) // 0 = unwindowed
		c := NewCounter(W)
		cur := int64(50)
		for _, e := range evs {
			cur += int64(e.Step % 3)
			c.Add(cur, float64(e.Delta))
		}
		data, err := c.MarshalBinary()
		if err != nil {
			return false
		}
		var c2 Counter
		if err := c2.UnmarshalBinary(data); err != nil {
			return false
		}
		for s := cur; s < cur+8; s++ {
			if !close(c.Sum(s), c2.Sum(s)) {
				return false
			}
		}
		// The decoded counter must keep accumulating identically.
		c.Add(cur+1, 2.5)
		c2.Add(cur+1, 2.5)
		return close(c.Sum(cur+1), c2.Sum(cur+1))
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Fatal(err)
	}
}

func TestCounterCodecRejectsGarbage(t *testing.T) {
	var c Counter
	if err := c.UnmarshalBinary([]byte("nonsense")); err == nil {
		t.Fatal("UnmarshalBinary accepted garbage")
	}
	if err := c.UnmarshalBinary(nil); err == nil {
		t.Fatal("UnmarshalBinary accepted nil")
	}
}
