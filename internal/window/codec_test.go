package window

import (
	"bytes"
	"math/rand"
	"testing"
)

// TestAddEncodedEquivalence checks that the in-place encoded ops are
// byte-for-byte equivalent to Unmarshal → Add → Sum → Marshal across
// random op sequences, window sizes, and session jumps.
func TestAddEncodedEquivalence(t *testing.T) {
	rng := rand.New(rand.NewSource(31))
	for _, w := range []int{0, 1, 2, 3, 8, 24} {
		for trial := 0; trial < 60; trial++ {
			ref := NewCounter(w)
			enc, err := ref.MarshalBinary()
			if err != nil {
				t.Fatal(err)
			}
			session := int64(rng.Intn(100))
			for op := 0; op < 50; op++ {
				// Mostly advance, occasionally stay or look back.
				switch rng.Intn(5) {
				case 0:
					session += int64(rng.Intn(2 * (w + 1)))
				case 1:
					if session > 0 {
						session -= int64(rng.Intn(int(session) + 1))
					}
				}
				delta := float64(rng.Intn(10)) - 2

				sum, ok := AddEncoded(enc, session, delta)
				if !ok {
					t.Fatalf("w=%d trial=%d op=%d: AddEncoded declined a marshaled counter", w, trial, op)
				}
				ref.Add(session, delta)
				refSum := ref.Sum(session)
				if sum != refSum {
					t.Fatalf("w=%d trial=%d op=%d session=%d: AddEncoded sum=%v, Counter sum=%v",
						w, trial, op, session, sum, refSum)
				}
				want, err := ref.MarshalBinary()
				if err != nil {
					t.Fatal(err)
				}
				if !bytes.Equal(enc, want) {
					t.Fatalf("w=%d trial=%d op=%d session=%d: encoded bytes diverge\n got %x\nwant %x",
						w, trial, op, session, enc, want)
				}

				current := session + int64(rng.Intn(w+2))
				gotSum, ok := SumEncoded(enc, current)
				if !ok {
					t.Fatalf("w=%d trial=%d op=%d: SumEncoded declined", w, trial, op)
				}
				if gotSum != ref.Sum(current) {
					t.Fatalf("w=%d trial=%d op=%d current=%d: SumEncoded=%v, Counter.Sum=%v",
						w, trial, op, current, gotSum, ref.Sum(current))
				}
			}
		}
	}
}

func TestAddEncodedDeclines(t *testing.T) {
	c := NewCounter(4)
	c.Add(3, 1)
	enc, _ := c.MarshalBinary()

	cases := []struct {
		name    string
		data    []byte
		session int64
	}{
		{"nil", nil, 1},
		{"short", enc[:10], 1},
		{"foreign magic", append([]byte{0x00}, enc[1:]...), 1},
		{"bad version", append([]byte{counterMagic, 9}, enc[2:]...), 1},
		{"negative session", enc, -1},
		{"truncated ring", enc[:len(enc)-8], 1},
	}
	for _, tc := range cases {
		cp := append([]byte(nil), tc.data...)
		if _, ok := AddEncoded(cp, tc.session, 1); ok {
			t.Errorf("%s: AddEncoded accepted", tc.name)
		}
		if !bytes.Equal(cp, tc.data) {
			t.Errorf("%s: declined AddEncoded mutated the buffer", tc.name)
		}
		if _, ok := SumEncoded(cp, tc.session); ok {
			t.Errorf("%s: SumEncoded accepted", tc.name)
		}
	}

	// Negative stored base: unaddressable by slot arithmetic.
	neg := append([]byte(nil), enc...)
	for i := 0; i < 8; i++ {
		neg[encOffBase+i] = 0xFF
	}
	if _, ok := AddEncoded(neg, 1, 1); ok {
		t.Error("negative base: AddEncoded accepted")
	}
}

func TestAddEncodedZeroAlloc(t *testing.T) {
	c := NewCounter(8)
	c.Add(5, 1)
	enc, _ := c.MarshalBinary()
	session := int64(5)
	allocs := testing.AllocsPerRun(200, func() {
		session++
		if _, ok := AddEncoded(enc, session, 1); !ok {
			t.Fatal("declined")
		}
		if _, ok := SumEncoded(enc, session); !ok {
			t.Fatal("declined")
		}
	})
	if allocs != 0 {
		t.Fatalf("AddEncoded/SumEncoded: %v allocs/op, want 0", allocs)
	}
}

func BenchmarkAddEncoded(b *testing.B) {
	c := NewCounter(24)
	c.Add(100, 1)
	enc, _ := c.MarshalBinary()
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		AddEncoded(enc, 100+int64(i%3), 1)
	}
}

func BenchmarkAddDecoded(b *testing.B) {
	c := NewCounter(24)
	c.Add(100, 1)
	enc, _ := c.MarshalBinary()
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		var cc Counter
		if err := cc.UnmarshalBinary(enc); err != nil {
			b.Fatal(err)
		}
		cc.Add(100+int64(i%3), 1)
		cc.Sum(100 + int64(i%3))
		out, err := cc.MarshalBinary()
		if err != nil {
			b.Fatal(err)
		}
		enc = out
	}
}
