// Package window implements the per-session sliding-window counters of
// TencentRec's real-time filtering mechanisms (§4.3).
//
// The paper splits the time window into sessions and considers only the W
// most recent sessions: itemCount and pairCount become per-session counts
// that are summed over the window (Eq. 10), each updated incrementally.
// Counter holds one such windowed value; Clock maps wall time to session
// indices so "both the time interval of the overall time window and the
// small time session can be specified".
package window

import "time"

// Clock converts time to session indices for a given session duration.
type Clock struct {
	// Session is the duration of one session (the window's sliding step).
	Session time.Duration
}

// SessionOf returns the session index containing t.
func (c Clock) SessionOf(t time.Time) int64 {
	if c.Session <= 0 {
		return 0
	}
	return t.UnixNano() / int64(c.Session)
}

// Counter is a float64 accumulator windowed over the last W sessions.
// A W of 0 or less disables windowing: the counter is a plain lifetime sum.
// Counter is not safe for concurrent use; in the pipeline each counter is
// owned by a single task via fields grouping.
type Counter struct {
	w    int
	ring []float64
	// base is the session index stored at slot 0; sessions
	// [base, base+w) map onto the ring cyclically.
	base  int64
	total float64 // used only when w <= 0
	init  bool
}

// NewCounter returns a counter summing the most recent w sessions.
// Any w <= 0 (including negative "explicitly unwindowed" markers)
// yields a lifetime-sum counter.
func NewCounter(w int) *Counter {
	if w < 0 {
		w = 0
	}
	c := &Counter{w: w}
	if w > 0 {
		c.ring = make([]float64, w)
	}
	return c
}

// W returns the configured window size in sessions.
func (c *Counter) W() int { return c.w }

// advance slides the window forward so that session fits in it,
// zeroing slots that fall out of range.
func (c *Counter) advance(session int64) {
	if !c.init {
		c.base = session
		c.init = true
		return
	}
	if session < c.base {
		return // late event: lands in the oldest retained session if any
	}
	newBase := session - int64(c.w) + 1
	if newBase <= c.base {
		return
	}
	steps := newBase - c.base
	if steps >= int64(c.w) {
		for i := range c.ring {
			c.ring[i] = 0
		}
	} else {
		for s := c.base; s < c.base+steps; s++ {
			c.ring[s%int64(c.w)] = 0
		}
	}
	c.base = newBase
}

// Add accumulates delta into the given session. Events older than the
// window are added to the oldest retained session (they are about to
// expire anyway); events newer than the window slide it forward.
func (c *Counter) Add(session int64, delta float64) {
	if c.w <= 0 {
		c.total += delta
		return
	}
	c.advance(session)
	if session < c.base {
		session = c.base
	}
	c.ring[session%int64(c.w)] += delta
}

// Sum returns the windowed total as of the given current session:
// the sum over sessions (current-W, current].
func (c *Counter) Sum(current int64) float64 {
	if c.w <= 0 {
		return c.total
	}
	if !c.init {
		return 0
	}
	var total float64
	lo := current - int64(c.w) + 1
	for s := c.base; s < c.base+int64(c.w); s++ {
		if s >= lo && s <= current {
			total += c.ring[s%int64(c.w)]
		}
	}
	return total
}

// Reset clears the counter.
func (c *Counter) Reset() {
	c.total = 0
	c.init = false
	for i := range c.ring {
		c.ring[i] = 0
	}
}
