package window

import (
	"encoding/binary"
	"fmt"
	"math"
)

// counterMagic guards against decoding foreign bytes as a counter.
const counterMagic = 0xC7

// MarshalBinary encodes the counter state for storage in TDStore, where
// the pipeline's stateless bolts keep their windowed counts (§3.3).
func (c *Counter) MarshalBinary() ([]byte, error) {
	buf := make([]byte, 0, 2+4+8+8+1+8*len(c.ring))
	buf = append(buf, counterMagic, 1) // magic, version
	buf = binary.LittleEndian.AppendUint32(buf, uint32(c.w))
	buf = binary.LittleEndian.AppendUint64(buf, uint64(c.base))
	buf = binary.LittleEndian.AppendUint64(buf, math.Float64bits(c.total))
	if c.init {
		buf = append(buf, 1)
	} else {
		buf = append(buf, 0)
	}
	for _, v := range c.ring {
		buf = binary.LittleEndian.AppendUint64(buf, math.Float64bits(v))
	}
	return buf, nil
}

// UnmarshalBinary restores a counter encoded by MarshalBinary.
func (c *Counter) UnmarshalBinary(data []byte) error {
	if len(data) < 23 || data[0] != counterMagic || data[1] != 1 {
		return fmt.Errorf("window: bad counter encoding (%d bytes)", len(data))
	}
	w := int(binary.LittleEndian.Uint32(data[2:6]))
	base := int64(binary.LittleEndian.Uint64(data[6:14]))
	total := math.Float64frombits(binary.LittleEndian.Uint64(data[14:22]))
	init := data[22] == 1
	rest := data[23:]
	if w < 0 || (w > 0 && len(rest) != 8*w) {
		return fmt.Errorf("window: counter encoding has %d ring bytes, want %d", len(rest), 8*w)
	}
	c.w = w
	c.base = base
	c.total = total
	c.init = init
	if w > 0 {
		c.ring = make([]float64, w)
		for i := range c.ring {
			c.ring[i] = math.Float64frombits(binary.LittleEndian.Uint64(rest[8*i:]))
		}
	} else {
		c.ring = nil
	}
	return nil
}
