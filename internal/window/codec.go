package window

import (
	"encoding/binary"
	"fmt"
	"math"
)

// counterMagic guards against decoding foreign bytes as a counter.
const counterMagic = 0xC7

// MarshalBinary encodes the counter state for storage in TDStore, where
// the pipeline's stateless bolts keep their windowed counts (§3.3).
func (c *Counter) MarshalBinary() ([]byte, error) {
	buf := make([]byte, 0, 2+4+8+8+1+8*len(c.ring))
	buf = append(buf, counterMagic, 1) // magic, version
	buf = binary.LittleEndian.AppendUint32(buf, uint32(c.w))
	buf = binary.LittleEndian.AppendUint64(buf, uint64(c.base))
	buf = binary.LittleEndian.AppendUint64(buf, math.Float64bits(c.total))
	if c.init {
		buf = append(buf, 1)
	} else {
		buf = append(buf, 0)
	}
	for _, v := range c.ring {
		buf = binary.LittleEndian.AppendUint64(buf, math.Float64bits(v))
	}
	return buf, nil
}

// Encoded-counter layout offsets (see MarshalBinary): magic 0, version
// 1, w uint32 at 2, base uint64 at 6, total float64 at 14, init byte at
// 22, ring floats from 23. The fixed width for a given w is what makes
// the in-place ops below possible: an Add never changes the size.
const (
	encOffW    = 2
	encOffBase = 6
	encOffTot  = 14
	encOffInit = 22
	encOffRing = 23
)

// encWindow validates a marshaled counter and returns its window size.
// ok=false covers foreign bytes, truncation, and negative bases or
// sessions (which the slot arithmetic below cannot address).
func encWindow(data []byte, session int64) (w int, ok bool) {
	if len(data) < encOffRing || data[0] != counterMagic || data[1] != 1 || session < 0 {
		return 0, false
	}
	w = int(int32(binary.LittleEndian.Uint32(data[encOffW:])))
	if w < 0 || (w > 0 && len(data)-encOffRing != 8*w) {
		return 0, false
	}
	if int64(binary.LittleEndian.Uint64(data[encOffBase:])) < 0 {
		return 0, false
	}
	return w, true
}

func encGetF64(data []byte, off int) float64 {
	return math.Float64frombits(binary.LittleEndian.Uint64(data[off:]))
}

func encPutF64(data []byte, off int, v float64) {
	binary.LittleEndian.PutUint64(data[off:], math.Float64bits(v))
}

// AddEncoded applies Counter.Add(session, delta) directly to a
// marshaled counter, mutating data in place, and returns the windowed
// sum as of session — byte-for-byte equivalent to Unmarshal → Add →
// Sum → Marshal with zero allocation. ok=false (data untouched) when
// data is not a well-formed counter encoding.
func AddEncoded(data []byte, session int64, delta float64) (sum float64, ok bool) {
	w, ok := encWindow(data, session)
	if !ok {
		return 0, false
	}
	if w <= 0 {
		total := encGetF64(data, encOffTot) + delta
		encPutF64(data, encOffTot, total)
		return total, true
	}
	base := int64(binary.LittleEndian.Uint64(data[encOffBase:]))
	if data[encOffInit] != 1 {
		base = session
		data[encOffInit] = 1
		binary.LittleEndian.PutUint64(data[encOffBase:], uint64(base))
	} else if session >= base {
		if newBase := session - int64(w) + 1; newBase > base {
			if steps := newBase - base; steps >= int64(w) {
				for i := 0; i < w; i++ {
					encPutF64(data, encOffRing+8*i, 0)
				}
			} else {
				for s := base; s < base+steps; s++ {
					encPutF64(data, encOffRing+8*int(s%int64(w)), 0)
				}
			}
			base = newBase
			binary.LittleEndian.PutUint64(data[encOffBase:], uint64(base))
		}
	}
	at := session
	if at < base {
		at = base
	}
	slot := encOffRing + 8*int(at%int64(w))
	encPutF64(data, slot, encGetF64(data, slot)+delta)
	return sumEncoded(data, w, base, session), true
}

// SumEncoded returns Counter.Sum(current) for a marshaled counter
// without decoding it. ok=false when data is not a counter encoding.
func SumEncoded(data []byte, current int64) (sum float64, ok bool) {
	w, ok := encWindow(data, current)
	if !ok {
		return 0, false
	}
	if w <= 0 {
		return encGetF64(data, encOffTot), true
	}
	if data[encOffInit] != 1 {
		return 0, true
	}
	base := int64(binary.LittleEndian.Uint64(data[encOffBase:]))
	return sumEncoded(data, w, base, current), true
}

func sumEncoded(data []byte, w int, base, current int64) float64 {
	var total float64
	lo := current - int64(w) + 1
	for s := base; s < base+int64(w); s++ {
		if s >= lo && s <= current {
			total += encGetF64(data, encOffRing+8*int(s%int64(w)))
		}
	}
	return total
}

// UnmarshalBinary restores a counter encoded by MarshalBinary.
func (c *Counter) UnmarshalBinary(data []byte) error {
	if len(data) < 23 || data[0] != counterMagic || data[1] != 1 {
		return fmt.Errorf("window: bad counter encoding (%d bytes)", len(data))
	}
	w := int(binary.LittleEndian.Uint32(data[2:6]))
	base := int64(binary.LittleEndian.Uint64(data[6:14]))
	total := math.Float64frombits(binary.LittleEndian.Uint64(data[14:22]))
	init := data[22] == 1
	rest := data[23:]
	if w < 0 || (w > 0 && len(rest) != 8*w) {
		return fmt.Errorf("window: counter encoding has %d ring bytes, want %d", len(rest), 8*w)
	}
	c.w = w
	c.base = base
	c.total = total
	c.init = init
	if w > 0 {
		c.ring = make([]float64, w)
		for i := range c.ring {
			c.ring[i] = math.Float64frombits(binary.LittleEndian.Uint64(rest[8*i:]))
		}
	} else {
		c.ring = nil
	}
	return nil
}
