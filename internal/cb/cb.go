// Package cb implements TencentRec's content-based recommendation
// algorithm (§4, [18] in the paper): it learns a term-vector profile of
// each user's interests from the content of the items they interact with,
// and recommends items whose content matches the profile.
//
// The paper deploys CB for news recommendation, "because of the rich
// content information and the emerging new items" (§6.2): a brand-new
// item is recommendable the moment its content is known, with no need
// for interaction history. Item vectors are TF-IDF weighted; user
// profiles decay exponentially so that real-time interest shifts
// dominate (the recency sensitivity evaluated in Fig. 10).
package cb

import (
	"math"
	"sort"
	"strings"
	"time"

	"tencentrec/internal/core"
)

// Config parameterizes a content-based engine.
type Config struct {
	// Weights maps action types to interest weights, as in core.Config.
	// Nil selects core.DefaultWeights.
	Weights map[core.ActionType]float64
	// HalfLife is the user-profile decay half-life: an interest's
	// weight halves every HalfLife. Zero disables decay.
	HalfLife time.Duration
	// MaxItemAge drops items from the recommendable pool once their
	// publication is older than this ("the life span of items is
	// short" for news). Zero keeps items forever.
	MaxItemAge time.Duration
	// MaxProfileTerms caps the number of terms retained per user
	// profile; the weakest terms are dropped. Default 64.
	MaxProfileTerms int
}

func (c Config) withDefaults() Config {
	if c.Weights == nil {
		c.Weights = core.DefaultWeights()
	}
	if c.MaxProfileTerms <= 0 {
		c.MaxProfileTerms = 64
	}
	return c
}

// itemProfile is a normalized TF vector with publication metadata.
// IDF is applied at scoring time so that evolving document frequencies
// do not require re-normalizing old items.
type itemProfile struct {
	tf        map[string]float64 // term -> normalized term frequency
	published time.Time
}

// userProfile is a decayed term-weight vector.
type userProfile struct {
	weights map[string]float64
	updated time.Time
}

// Engine is an incremental content-based recommender.
// It is not safe for concurrent use.
type Engine struct {
	cfg Config

	items    map[string]*itemProfile
	df       map[string]int // term -> number of items containing it
	numItems int
	inverted map[string]map[string]bool // term -> set of item ids
	users    map[string]*userProfile
}

// NewEngine returns an empty content-based engine.
func NewEngine(cfg Config) *Engine {
	return &Engine{
		cfg:      cfg.withDefaults(),
		items:    make(map[string]*itemProfile),
		df:       make(map[string]int),
		inverted: make(map[string]map[string]bool),
		users:    make(map[string]*userProfile),
	}
}

// Tokenize lower-cases and splits content on non-letter/digit boundaries.
// Exposed so workloads and tests share the engine's notion of a term.
func Tokenize(content string) []string {
	return strings.FieldsFunc(strings.ToLower(content), func(r rune) bool {
		letter := r >= 'a' && r <= 'z' || r >= '0' && r <= '9' || r >= 0x4e00 // CJK passthrough
		return !letter
	})
}

// AddItem registers (or replaces) an item with its content terms.
// New items are immediately recommendable — the CB answer to item
// cold-start.
func (e *Engine) AddItem(id string, terms []string, published time.Time) {
	if old, ok := e.items[id]; ok {
		for t := range old.tf {
			e.df[t]--
			delete(e.inverted[t], id)
		}
		e.numItems--
	}
	counts := make(map[string]float64)
	for _, t := range terms {
		counts[t]++
	}
	var norm float64
	for _, c := range counts {
		norm += c * c
	}
	norm = math.Sqrt(norm)
	p := &itemProfile{tf: make(map[string]float64, len(counts)), published: published}
	for t, c := range counts {
		p.tf[t] = c / norm
		e.df[t]++
		set := e.inverted[t]
		if set == nil {
			set = make(map[string]bool)
			e.inverted[t] = set
		}
		set[id] = true
	}
	e.items[id] = p
	e.numItems++
}

// RemoveItem drops an item from the pool.
func (e *Engine) RemoveItem(id string) {
	p, ok := e.items[id]
	if !ok {
		return
	}
	for t := range p.tf {
		e.df[t]--
		delete(e.inverted[t], id)
	}
	delete(e.items, id)
	e.numItems--
}

// NumItems returns the recommendable pool size.
func (e *Engine) NumItems() int { return e.numItems }

// idf returns the inverse document frequency of a term.
func (e *Engine) idf(term string) float64 {
	df := e.df[term]
	if df <= 0 {
		return 0
	}
	return math.Log(1 + float64(e.numItems)/float64(df))
}

// decay applies exponential decay to a profile up to now.
func (e *Engine) decay(p *userProfile, now time.Time) {
	if e.cfg.HalfLife <= 0 || p.updated.IsZero() {
		p.updated = now
		return
	}
	dt := now.Sub(p.updated)
	if dt <= 0 {
		return
	}
	f := math.Exp2(-float64(dt) / float64(e.cfg.HalfLife))
	for t, w := range p.weights {
		w *= f
		if w < 1e-6 {
			delete(p.weights, t)
		} else {
			p.weights[t] = w
		}
	}
	p.updated = now
}

// Observe folds one user action into the user's interest profile:
// the item's TF-IDF vector scaled by the action weight, on top of the
// decayed existing profile.
func (e *Engine) Observe(a core.Action) {
	w, ok := e.cfg.Weights[a.Type]
	if !ok || w <= 0 {
		return
	}
	item, ok := e.items[a.Item]
	if !ok {
		return // content unknown; nothing to learn from
	}
	p := e.users[a.User]
	if p == nil {
		p = &userProfile{weights: make(map[string]float64)}
		e.users[a.User] = p
	}
	e.decay(p, a.Time)
	for t, tf := range item.tf {
		p.weights[t] += w * tf * e.idf(t)
	}
	e.trimProfile(p)
}

// trimProfile drops the weakest terms beyond the cap.
func (e *Engine) trimProfile(p *userProfile) {
	if len(p.weights) <= e.cfg.MaxProfileTerms {
		return
	}
	type tw struct {
		t string
		w float64
	}
	all := make([]tw, 0, len(p.weights))
	for t, w := range p.weights {
		all = append(all, tw{t, w})
	}
	sort.Slice(all, func(i, j int) bool { return all[i].w > all[j].w })
	for _, x := range all[e.cfg.MaxProfileTerms:] {
		delete(p.weights, x.t)
	}
}

// Recommend scores the pool against the user's decayed profile and
// returns the n best fresh items the user has not been excluded from.
func (e *Engine) Recommend(user string, now time.Time, n int, exclude map[string]bool) []core.ScoredItem {
	p := e.users[user]
	if p == nil || len(p.weights) == 0 {
		return nil
	}
	e.decay(p, now)
	return e.match(p.weights, now, n, exclude)
}

// match scores candidate items against a term-weight vector through the
// inverted index.
func (e *Engine) match(weights map[string]float64, now time.Time, n int, exclude map[string]bool) []core.ScoredItem {
	scores := make(map[string]float64)
	// Deterministic term order keeps floating-point accumulation — and
	// therefore rankings — reproducible across runs.
	terms := make([]string, 0, len(weights))
	for t := range weights {
		terms = append(terms, t)
	}
	sort.Strings(terms)
	for _, t := range terms {
		w := weights[t]
		idf := e.idf(t)
		if idf == 0 {
			continue
		}
		for id := range e.inverted[t] {
			item := e.items[id]
			if e.cfg.MaxItemAge > 0 && now.Sub(item.published) > e.cfg.MaxItemAge {
				continue
			}
			if exclude[id] {
				continue
			}
			scores[id] += w * item.tf[t] * idf
		}
	}
	out := make([]core.ScoredItem, 0, len(scores))
	for id, s := range scores {
		out = append(out, core.ScoredItem{Item: id, Score: s})
	}
	sort.Slice(out, func(i, j int) bool {
		if out[i].Score != out[j].Score {
			return out[i].Score > out[j].Score
		}
		return out[i].Item < out[j].Item
	})
	if n > 0 && len(out) > n {
		out = out[:n]
	}
	return out
}

// Model is a frozen snapshot of user profiles and the item pool, the
// "semi-real-time" baseline of §6.3 whose "CB recommendation model is
// updated once an hour".
type Model struct {
	engine   *Engine // frozen copy; never mutated after snapshot
	snapTime time.Time
}

// Snapshot deep-copies the engine state into an immutable model.
func (e *Engine) Snapshot(now time.Time) *Model {
	cp := NewEngine(e.cfg)
	cp.numItems = e.numItems
	for id, p := range e.items {
		tf := make(map[string]float64, len(p.tf))
		for t, v := range p.tf {
			tf[t] = v
		}
		cp.items[id] = &itemProfile{tf: tf, published: p.published}
	}
	for t, d := range e.df {
		cp.df[t] = d
	}
	for t, set := range e.inverted {
		s2 := make(map[string]bool, len(set))
		for id := range set {
			s2[id] = true
		}
		cp.inverted[t] = s2
	}
	for u, p := range e.users {
		w2 := make(map[string]float64, len(p.weights))
		for t, w := range p.weights {
			w2[t] = w
		}
		cp.users[u] = &userProfile{weights: w2, updated: p.updated}
	}
	return &Model{engine: cp, snapTime: now}
}

// Recommend serves from the frozen state: profiles do not learn from
// actions that happened after the snapshot, and items added later are
// invisible — exactly the staleness the real-time system eliminates.
func (m *Model) Recommend(user string, now time.Time, n int, exclude map[string]bool) []core.ScoredItem {
	p := m.engine.users[user]
	if p == nil || len(p.weights) == 0 {
		return nil
	}
	// Freshness filtering still applies at serve time.
	return m.engine.match(p.weights, now, n, exclude)
}

// NumItems returns the frozen pool size.
func (m *Model) NumItems() int { return m.engine.numItems }
