package cb

import (
	"fmt"
	"testing"
	"time"

	"tencentrec/internal/core"
)

var t0 = time.Date(2015, 5, 31, 0, 0, 0, 0, time.UTC)

func addNews(e *Engine, id, content string, published time.Time) {
	e.AddItem(id, Tokenize(content), published)
}

func TestTokenize(t *testing.T) {
	got := Tokenize("Breaking: GPU prices FALL 30%!")
	want := []string{"breaking", "gpu", "prices", "fall", "30"}
	if len(got) != len(want) {
		t.Fatalf("Tokenize = %v, want %v", got, want)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("Tokenize = %v, want %v", got, want)
		}
	}
}

func TestRecommendMatchesInterests(t *testing.T) {
	e := NewEngine(Config{})
	addNews(e, "sports1", "football match final goal striker", t0)
	addNews(e, "sports2", "football league striker transfer", t0)
	addNews(e, "tech1", "smartphone chip release benchmark", t0)
	e.Observe(core.Action{User: "u", Item: "sports1", Type: core.ActionRead, Time: t0.Add(time.Minute)})
	recs := e.Recommend("u", t0.Add(2*time.Minute), 2, map[string]bool{"sports1": true})
	if len(recs) == 0 || recs[0].Item != "sports2" {
		t.Fatalf("recs = %v, want sports2 first", recs)
	}
}

func TestColdUserGetsNothing(t *testing.T) {
	e := NewEngine(Config{})
	addNews(e, "n1", "hello world", t0)
	if recs := e.Recommend("stranger", t0, 5, nil); recs != nil {
		t.Fatalf("cold user got %v", recs)
	}
}

func TestNewItemImmediatelyRecommendable(t *testing.T) {
	e := NewEngine(Config{})
	addNews(e, "old", "election vote parliament", t0)
	e.Observe(core.Action{User: "u", Item: "old", Type: core.ActionRead, Time: t0.Add(time.Minute)})
	// A brand-new article on the same topic appears with zero history.
	addNews(e, "breaking", "election result vote count", t0.Add(2*time.Minute))
	recs := e.Recommend("u", t0.Add(3*time.Minute), 3, map[string]bool{"old": true})
	if len(recs) == 0 || recs[0].Item != "breaking" {
		t.Fatalf("new item not recommended: %v", recs)
	}
}

func TestProfileDecayShiftsInterests(t *testing.T) {
	e := NewEngine(Config{HalfLife: time.Hour})
	addNews(e, "s1", "football goal striker", t0)
	addNews(e, "s2", "football match striker", t0)
	addNews(e, "t1", "chip smartphone benchmark", t0)
	addNews(e, "t2", "chip processor benchmark", t0)
	// Strong old sports interest, then a fresh tech interest.
	e.Observe(core.Action{User: "u", Item: "s1", Type: core.ActionShare, Time: t0})
	e.Observe(core.Action{User: "u", Item: "t1", Type: core.ActionRead, Time: t0.Add(10 * time.Hour)})
	recs := e.Recommend("u", t0.Add(10*time.Hour+time.Minute), 1,
		map[string]bool{"s1": true, "t1": true})
	if len(recs) == 0 || recs[0].Item != "t2" {
		t.Fatalf("decayed profile still dominated by old interest: %v", recs)
	}
}

func TestMaxItemAgeFiltersStaleNews(t *testing.T) {
	e := NewEngine(Config{MaxItemAge: 24 * time.Hour})
	addNews(e, "stale", "storm warning coast", t0)
	addNews(e, "fresh", "storm update coast", t0.Add(30*time.Hour))
	e.Observe(core.Action{User: "u", Item: "fresh", Type: core.ActionRead, Time: t0.Add(31 * time.Hour)})
	recs := e.Recommend("u", t0.Add(32*time.Hour), 5, map[string]bool{"fresh": true})
	for _, r := range recs {
		if r.Item == "stale" {
			t.Fatal("expired item recommended")
		}
	}
}

func TestRemoveItem(t *testing.T) {
	e := NewEngine(Config{})
	addNews(e, "n1", "alpha beta", t0)
	addNews(e, "n2", "alpha gamma", t0)
	e.Observe(core.Action{User: "u", Item: "n1", Type: core.ActionRead, Time: t0})
	e.RemoveItem("n2")
	if e.NumItems() != 1 {
		t.Fatalf("NumItems = %d", e.NumItems())
	}
	recs := e.Recommend("u", t0.Add(time.Minute), 5, nil)
	for _, r := range recs {
		if r.Item == "n2" {
			t.Fatal("removed item recommended")
		}
	}
}

func TestReplacingItemUpdatesIndex(t *testing.T) {
	e := NewEngine(Config{})
	addNews(e, "n1", "alpha beta", t0)
	addNews(e, "n1", "gamma delta", t0) // replace content
	if e.NumItems() != 1 {
		t.Fatalf("NumItems = %d after replace", e.NumItems())
	}
	if e.df["alpha"] != 0 {
		t.Fatalf("df[alpha] = %d after replace, want 0", e.df["alpha"])
	}
	if e.df["gamma"] != 1 {
		t.Fatalf("df[gamma] = %d, want 1", e.df["gamma"])
	}
}

func TestSnapshotServesStale(t *testing.T) {
	e := NewEngine(Config{})
	addNews(e, "a", "alpha beta", t0)
	addNews(e, "b", "alpha gamma", t0)
	e.Observe(core.Action{User: "u", Item: "a", Type: core.ActionRead, Time: t0})
	m := e.Snapshot(t0.Add(time.Minute))

	// A new item and a new interaction arrive after the snapshot.
	addNews(e, "c", "alpha fresh", t0.Add(2*time.Minute))
	e.Observe(core.Action{User: "u", Item: "c", Type: core.ActionShare, Time: t0.Add(3 * time.Minute)})

	// The live engine sees c; the frozen model cannot.
	if m.NumItems() != 2 {
		t.Fatalf("snapshot NumItems = %d, want 2", m.NumItems())
	}
	recs := m.Recommend("u", t0.Add(4*time.Minute), 5, map[string]bool{"a": true})
	for _, r := range recs {
		if r.Item == "c" {
			t.Fatal("frozen model recommended a post-snapshot item")
		}
	}
	live := e.Recommend("u", t0.Add(4*time.Minute), 5, map[string]bool{"a": true, "c": true})
	if len(live) == 0 {
		t.Fatal("live engine returned nothing")
	}
}

func TestProfileTermCap(t *testing.T) {
	e := NewEngine(Config{MaxProfileTerms: 4})
	for i := 0; i < 10; i++ {
		id := fmt.Sprintf("n%d", i)
		addNews(e, id, fmt.Sprintf("term%d filler%d extra%d", i, i, i), t0)
		e.Observe(core.Action{User: "u", Item: id, Type: core.ActionRead, Time: t0.Add(time.Duration(i) * time.Minute)})
	}
	p := e.users["u"]
	if len(p.weights) > 4 {
		t.Fatalf("profile has %d terms, cap 4", len(p.weights))
	}
}

func TestUnknownItemActionIgnored(t *testing.T) {
	e := NewEngine(Config{})
	e.Observe(core.Action{User: "u", Item: "ghost", Type: core.ActionRead, Time: t0})
	if _, ok := e.users["u"]; ok {
		t.Fatal("profile created from unknown item")
	}
}
