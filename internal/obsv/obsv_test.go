package obsv

import (
	"bytes"
	"encoding/json"
	"math/bits"
	"strings"
	"sync"
	"testing"
	"time"
)

func TestCounterGauge(t *testing.T) {
	r := NewRegistry()
	c := r.Counter("hits_total", "hits")
	c.Inc()
	c.Add(4)
	if got := c.Value(); got != 5 {
		t.Fatalf("counter = %d, want 5", got)
	}
	if again := r.Counter("hits_total", "hits"); again != c {
		t.Fatal("re-registering the same counter returned a new instrument")
	}
	g := r.Gauge("depth", "queue depth", "q", "a")
	g.Set(7)
	g.Add(-2)
	if got := g.Value(); got != 5 {
		t.Fatalf("gauge = %d, want 5", got)
	}
	// Label order must not split series.
	h1 := r.Histogram("lat_seconds", "", "a", "1", "b", "2")
	h2 := r.Histogram("lat_seconds", "", "b", "2", "a", "1")
	if h1 != h2 {
		t.Fatal("label registration order split the series")
	}
}

func TestRegistryKindConflictPanics(t *testing.T) {
	r := NewRegistry()
	r.Counter("x_total", "")
	defer func() {
		if recover() == nil {
			t.Fatal("kind conflict did not panic")
		}
	}()
	r.Gauge("x_total", "")
}

func TestHistogramBucketing(t *testing.T) {
	h := NewHistogram()
	for _, v := range []int64{0, 1, 2, 3, 4, 7, 8, 1023, 1024, -5} {
		h.Observe(v)
	}
	s := h.Snapshot()
	if s.Count != 10 {
		t.Fatalf("count = %d, want 10", s.Count)
	}
	// -5 counts as zero, so bucket 0 holds two observations.
	if s.Buckets[0] != 2 {
		t.Fatalf("bucket[0] = %d, want 2 (0 and clamped -5)", s.Buckets[0])
	}
	if s.Buckets[bits.Len64(1024)] != 1 {
		t.Fatalf("1024 not in bucket %d", bits.Len64(1024))
	}
	if s.Max != 1024 {
		t.Fatalf("max = %d, want 1024", s.Max)
	}
	if s.Sum != 0+1+2+3+4+7+8+1023+1024 {
		t.Fatalf("sum = %d", s.Sum)
	}
}

func TestHistogramQuantiles(t *testing.T) {
	h := NewHistogram()
	// 1000 observations uniform in [0, 1000): quantiles should land in
	// the right power-of-two neighbourhood (the estimator interpolates
	// within buckets, so tolerances are bucket-scale).
	for i := int64(0); i < 1000; i++ {
		h.Observe(i)
	}
	s := h.Snapshot()
	if p50 := s.Quantile(0.5); p50 < 256 || p50 > 1024 {
		t.Fatalf("p50 = %d, want within [256, 1024]", p50)
	}
	if p99 := s.Quantile(0.99); p99 < 512 || p99 > 999 {
		t.Fatalf("p99 = %d, want within [512, 999]", p99)
	}
	if p100 := s.Quantile(1); p100 != 999 {
		t.Fatalf("p100 = %d, want exactly max (999)", p100)
	}
	if q := s.Quantile(0); q < 0 || q > 1 {
		t.Fatalf("p0 = %d, want first bucket", q)
	}
	var empty HistogramSnapshot
	if empty.Quantile(0.5) != 0 {
		t.Fatal("empty snapshot quantile != 0")
	}
}

func TestHistogramMerge(t *testing.T) {
	a, b := NewHistogram(), NewHistogram()
	for i := int64(0); i < 100; i++ {
		a.Observe(10)
		b.Observe(1000)
	}
	s := a.Snapshot()
	s.Merge(b.Snapshot())
	if s.Count != 200 {
		t.Fatalf("merged count = %d", s.Count)
	}
	if s.Max != 1000 {
		t.Fatalf("merged max = %d", s.Max)
	}
	if s.Sum != 100*10+100*1000 {
		t.Fatalf("merged sum = %d", s.Sum)
	}
	if p50 := s.Quantile(0.5); p50 > 16 {
		t.Fatalf("merged p50 = %d, want in the low cluster", p50)
	}
	if p99 := s.Quantile(0.99); p99 < 512 {
		t.Fatalf("merged p99 = %d, want in the high cluster", p99)
	}
}

func TestHistogramConcurrent(t *testing.T) {
	h := NewHistogram()
	var wg sync.WaitGroup
	for w := 0; w < 8; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := int64(0); i < 10000; i++ {
				h.Observe(i)
			}
		}()
	}
	wg.Wait()
	if s := h.Snapshot(); s.Count != 80000 {
		t.Fatalf("concurrent count = %d, want 80000", s.Count)
	}
}

func TestWritePrometheus(t *testing.T) {
	r := NewRegistry()
	r.Counter("app_events_total", "events seen", "kind", "click").Add(3)
	r.Gauge("app_depth", "queue depth").Set(9)
	h := r.Histogram("app_latency_seconds", "request latency", "path", "/x")
	h.Observe(1500)    // 1.5µs
	h.Observe(3 * 1e9) // 3s
	r.GaugeFunc("app_backlog", "callback gauge", func() int64 { return 42 })
	var b bytes.Buffer
	if err := r.WritePrometheus(&b); err != nil {
		t.Fatal(err)
	}
	out := b.String()
	for _, want := range []string{
		"# TYPE app_events_total counter",
		`app_events_total{kind="click"} 3`,
		"# TYPE app_depth gauge",
		"app_depth 9",
		"# TYPE app_latency_seconds histogram",
		`app_latency_seconds_bucket{path="/x",le="+Inf"} 2`,
		`app_latency_seconds_count{path="/x"} 2`,
		"app_backlog 42",
	} {
		if !strings.Contains(out, want) {
			t.Fatalf("exposition missing %q:\n%s", want, out)
		}
	}
	// The 3s observation must appear in a bucket whose le exceeds 3
	// seconds (scaled from nanoseconds), and cumulative counts must be
	// non-decreasing.
	if !strings.Contains(out, `app_latency_seconds_sum{path="/x"} 3.0000015`) {
		t.Fatalf("scaled sum missing:\n%s", out)
	}
	var prev int64 = -1
	for _, line := range strings.Split(out, "\n") {
		if !strings.HasPrefix(line, "app_latency_seconds_bucket") {
			continue
		}
		var n int64
		if _, err := fmtSscanLast(line, &n); err != nil {
			t.Fatalf("parse %q: %v", line, err)
		}
		if n < prev {
			t.Fatalf("cumulative bucket counts decreased: %q after %d", line, prev)
		}
		prev = n
	}
}

// fmtSscanLast parses the trailing integer of an exposition line.
func fmtSscanLast(line string, n *int64) (int, error) {
	i := strings.LastIndexByte(line, ' ')
	v, err := parseInt(line[i+1:])
	*n = v
	return 1, err
}

func parseInt(s string) (int64, error) {
	var v int64
	for _, c := range s {
		if c < '0' || c > '9' {
			return 0, &parseErr{s}
		}
		v = v*10 + int64(c-'0')
	}
	return v, nil
}

type parseErr struct{ s string }

func (e *parseErr) Error() string { return "not an int: " + e.s }

func TestWriteJSON(t *testing.T) {
	r := NewRegistry()
	r.Counter("c_total", "", "k", "v").Add(2)
	r.Histogram("h_seconds", "").Observe(2e9)
	var b bytes.Buffer
	if err := r.WriteJSON(&b); err != nil {
		t.Fatal(err)
	}
	var out map[string][]map[string]interface{}
	if err := json.Unmarshal(b.Bytes(), &out); err != nil {
		t.Fatalf("invalid JSON: %v\n%s", err, b.String())
	}
	if len(out["c_total"]) != 1 {
		t.Fatalf("c_total rows = %v", out["c_total"])
	}
	hist, ok := out["h_seconds"][0]["histogram"].(map[string]interface{})
	if !ok {
		t.Fatalf("h_seconds has no histogram summary: %v", out["h_seconds"])
	}
	if max := hist["max"].(float64); max < 1.9 || max > 2.1 {
		t.Fatalf("scaled max = %v, want ~2s", max)
	}
}

func TestTracerSamplingRate(t *testing.T) {
	tr := NewTracer(4, 1000)
	sampled := 0
	for i := 0; i < 100; i++ {
		if tr.Sample() != nil {
			sampled++
		}
	}
	if sampled != 25 {
		t.Fatalf("sampled %d of 100 at 1/4", sampled)
	}
	every1 := NewTracer(1, 10)
	for i := 0; i < 5; i++ {
		if every1.Sample() == nil {
			t.Fatal("every=1 must sample every call")
		}
	}
}

func TestTracerRingAndSpans(t *testing.T) {
	tr := NewTracer(1, 4)
	for i := 0; i < 6; i++ {
		tc := tr.Sample()
		tc.AddSpan("stage", tc.Start, tc.Start+1, tc.Start+2)
	}
	traces := tr.Traces()
	if len(traces) != 4 {
		t.Fatalf("ring kept %d traces, want 4", len(traces))
	}
	// Oldest first: ids 3,4,5,6 survive the 6-sample run.
	if traces[0].ID != 3 || traces[3].ID != 6 {
		t.Fatalf("ring order = %d..%d, want 3..6", traces[0].ID, traces[3].ID)
	}
	// Span bound holds.
	tc := tr.Sample()
	for i := 0; i < maxSpansPerTrace+10; i++ {
		tc.AddSpan("s", 0, 1, 2)
	}
	s := tc.snapshot()
	if len(s.Spans) != maxSpansPerTrace || s.Dropped != 10 {
		t.Fatalf("span bound: kept %d dropped %d", len(s.Spans), s.Dropped)
	}
}

func TestWriteWaterfall(t *testing.T) {
	tr := NewTracer(1, 4)
	tc := tr.Sample()
	base := tc.Start
	tc.AddSpan("pretreatment", base, base+int64(10*time.Microsecond), base+int64(20*time.Microsecond))
	tc.AddSpan("spout", base, base, base)
	var b bytes.Buffer
	WriteWaterfall(&b, tr.Traces())
	out := b.String()
	if !strings.Contains(out, "pretreatment") || !strings.Contains(out, "spout") {
		t.Fatalf("waterfall missing stages:\n%s", out)
	}
	// Spans render sorted by start: spout (t=0) before pretreatment.
	if strings.Index(out, "spout") > strings.Index(out, "pretreatment") {
		t.Fatalf("waterfall not sorted by span start:\n%s", out)
	}
}

func TestNowMonotonic(t *testing.T) {
	a := Now()
	b := Now()
	if b < a {
		t.Fatalf("Now went backwards: %d then %d", a, b)
	}
}

// TestObserveAllocs pins the zero-allocation guarantee the hot paths
// rely on; the same property is smoke-checked by scripts/check.sh via
// the benchmarks.
func TestObserveAllocs(t *testing.T) {
	h := NewHistogram()
	var c Counter
	var g Gauge
	if n := testing.AllocsPerRun(1000, func() { h.Observe(12345) }); n != 0 {
		t.Fatalf("Histogram.Observe allocates %v per op", n)
	}
	if n := testing.AllocsPerRun(1000, func() { c.Add(1) }); n != 0 {
		t.Fatalf("Counter.Add allocates %v per op", n)
	}
	if n := testing.AllocsPerRun(1000, func() { g.Set(1) }); n != 0 {
		t.Fatalf("Gauge.Set allocates %v per op", n)
	}
}
