package obsv

import (
	"fmt"
	"io"
	"sort"
	"sync"
	"sync/atomic"
	"time"
)

// traceBase anchors Now(): span timestamps are monotonic-clock offsets
// from process start, immune to wall-clock steps.
var traceBase = time.Now()

// Now returns a monotonic timestamp in nanoseconds since process start,
// the clock all trace spans are recorded against.
func Now() int64 { return int64(time.Since(traceBase)) }

// DefaultTraceEvery is the default sampling rate of a Tracer: one
// sampled trace per this many Sample calls.
const DefaultTraceEvery = 1024

// DefaultTraceRing is the default number of completed-or-active traces a
// Tracer retains.
const DefaultTraceRing = 64

// maxSpansPerTrace bounds a trace's span list; spans beyond the bound
// are dropped so a pathological fan-out cannot grow a trace unboundedly.
const maxSpansPerTrace = 64

// Span is one stage's worth of work attributed to a trace: the tuple
// was enqueued for the stage at Enqueue, its execution ran [Start, End).
// All timestamps are Now()-clock nanoseconds. Queue wait is
// Start - Enqueue; execution cost is End - Start.
type Span struct {
	// Stage names the component (topology unit) that executed the work.
	Stage string `json:"stage"`
	// Enqueue is when the tuple was emitted toward the stage.
	Enqueue int64 `json:"enqueue"`
	// Start is when the stage began executing the tuple.
	Start int64 `json:"start"`
	// End is when the stage finished executing the tuple.
	End int64 `json:"end"`
}

// Trace accumulates the spans of one sampled tuple lineage as it moves
// through the topology. Spans are appended by whichever task executes a
// tuple carrying the trace, so appends are mutex-guarded — traces are
// rare (one per sampling interval) and the lock is uncontended in
// practice.
type Trace struct {
	// ID identifies the trace across exports.
	ID uint64
	// Start is when the trace was sampled at the spout.
	Start int64

	mu      sync.Mutex
	spans   []Span
	dropped int
}

// AddSpan records one stage's execution. Spans beyond the per-trace
// bound are counted but not retained.
func (t *Trace) AddSpan(stage string, enqueue, start, end int64) {
	t.mu.Lock()
	if len(t.spans) < maxSpansPerTrace {
		t.spans = append(t.spans, Span{Stage: stage, Enqueue: enqueue, Start: start, End: end})
	} else {
		t.dropped++
	}
	t.mu.Unlock()
}

// snapshot copies the trace for export, spans ordered by Start.
func (t *Trace) snapshot() TraceSnapshot {
	t.mu.Lock()
	spans := append([]Span(nil), t.spans...)
	dropped := t.dropped
	t.mu.Unlock()
	sort.SliceStable(spans, func(i, j int) bool { return spans[i].Start < spans[j].Start })
	return TraceSnapshot{ID: t.ID, Start: t.Start, Spans: spans, Dropped: dropped}
}

// TraceSnapshot is an exported trace: its spans sorted by start time.
type TraceSnapshot struct {
	ID      uint64 `json:"id"`
	Start   int64  `json:"start"`
	Spans   []Span `json:"spans"`
	Dropped int    `json:"dropped,omitempty"`
}

// Tracer samples tuple traces at a fixed rate and retains the most
// recent ones in a bounded ring. Sample is the only hot-path entry
// point: the common (unsampled) case costs one atomic increment and a
// modulo.
type Tracer struct {
	every  uint64
	n      atomic.Uint64
	nextID atomic.Uint64

	mu   sync.Mutex
	ring []*Trace
	pos  int
}

// NewTracer returns a tracer sampling one trace per every calls, keeping
// the last ring traces. Non-positive arguments use the defaults
// (DefaultTraceEvery, DefaultTraceRing); every == 1 samples everything.
func NewTracer(every, ring int) *Tracer {
	if every <= 0 {
		every = DefaultTraceEvery
	}
	if ring <= 0 {
		ring = DefaultTraceRing
	}
	return &Tracer{every: uint64(every), ring: make([]*Trace, 0, ring)}
}

// Every reports the sampling interval.
func (tr *Tracer) Every() int { return int(tr.every) }

// Sample returns a new Trace on every N-th call and nil otherwise.
// Callers attach the returned trace to the sampled unit of work.
func (tr *Tracer) Sample() *Trace {
	if tr.every > 1 && tr.n.Add(1)%tr.every != 0 {
		return nil
	}
	t := &Trace{ID: tr.nextID.Add(1), Start: Now()}
	tr.mu.Lock()
	if len(tr.ring) < cap(tr.ring) {
		tr.ring = append(tr.ring, t)
	} else {
		tr.ring[tr.pos] = t
		tr.pos = (tr.pos + 1) % cap(tr.ring)
	}
	tr.mu.Unlock()
	return t
}

// Traces exports the retained traces, oldest first, each with its spans
// sorted by start time. Traces with no spans yet (sampled but not
// executed anywhere) are skipped.
func (tr *Tracer) Traces() []TraceSnapshot {
	tr.mu.Lock()
	all := make([]*Trace, 0, len(tr.ring))
	// ring[pos:] are the oldest entries once the ring has wrapped.
	all = append(all, tr.ring[tr.pos:]...)
	all = append(all, tr.ring[:tr.pos]...)
	tr.mu.Unlock()
	out := make([]TraceSnapshot, 0, len(all))
	for _, t := range all {
		s := t.snapshot()
		if len(s.Spans) > 0 {
			out = append(out, s)
		}
	}
	return out
}

// WriteWaterfall renders traces as per-stage latency waterfalls: one
// block per trace, one line per span with its offset from the trace
// start, queue wait and execution time — the action→pretreatment→
// co-rating→similarity→storage breakdown the monitor prints.
func WriteWaterfall(w io.Writer, traces []TraceSnapshot) {
	for _, t := range traces {
		end := t.Start
		for _, s := range t.Spans {
			if s.End > end {
				end = s.End
			}
		}
		fmt.Fprintf(w, "trace %d  total %v  spans %d\n", t.ID, time.Duration(end-t.Start), len(t.Spans))
		for _, s := range t.Spans {
			fmt.Fprintf(w, "  %-24s +%-12v queue %-12v exec %v\n",
				s.Stage,
				time.Duration(s.Enqueue-t.Start),
				time.Duration(s.Start-s.Enqueue),
				time.Duration(s.End-s.Start))
		}
		if t.Dropped > 0 {
			fmt.Fprintf(w, "  (%d spans dropped beyond the per-trace bound)\n", t.Dropped)
		}
	}
}
