// Package obsv is the repo's observability substrate: a metrics registry
// with allocation-free hot-path instruments (Counter, Gauge, a lock-free
// power-of-two-bucketed Histogram), a sampled tuple Tracer, and
// exposition in Prometheus text format 0.0.4 and an expvar-style JSON
// dump.
//
// The paper's headline claim is latency — "seconds-level" freshness
// versus hours for batch CF (§1, §6.2) — which is unfalsifiable from
// averages alone. This package gives every layer (stream engine, TDStore
// client, TDAccess broker, HTTP serving) p50/p99/max visibility at a
// hot-path cost of a few nanoseconds and zero allocations per observe,
// so the instrumentation can stay on in the configurations the
// benchmarks measure.
//
// Design rules:
//
//   - Instruments are created once, at setup time, via the Registry;
//     the hot path only touches pre-resolved pointers (Counter.Add,
//     Histogram.Observe). Label resolution never happens per event.
//   - All instruments are safe for concurrent use; none take locks on
//     the write path.
//   - The ...Func variants (CounterFunc, GaugeFunc, HistogramFunc) read
//     their value through a callback at exposition time, for values a
//     subsystem already maintains (queue depths, backlogs, merged
//     per-task histograms) — zero hot-path cost.
//
// By convention, histograms observe int64 nanoseconds; families named
// with a `_seconds` suffix are scaled to seconds at exposition.
package obsv

import (
	"fmt"
	"sort"
	"strings"
	"sync"
	"sync/atomic"
)

// Counter is a monotonically increasing int64 instrument.
type Counter struct {
	v atomic.Int64
}

// Add increments the counter by delta.
func (c *Counter) Add(delta int64) { c.v.Add(delta) }

// Inc increments the counter by one.
func (c *Counter) Inc() { c.v.Add(1) }

// Value returns the current count.
func (c *Counter) Value() int64 { return c.v.Load() }

// Gauge is an int64 instrument that can go up and down.
type Gauge struct {
	v atomic.Int64
}

// Set stores the gauge value.
func (g *Gauge) Set(v int64) { g.v.Store(v) }

// Add adjusts the gauge by delta.
func (g *Gauge) Add(delta int64) { g.v.Add(delta) }

// Value returns the current gauge value.
func (g *Gauge) Value() int64 { return g.v.Load() }

// kind is the exposition type of a metric family.
type kind uint8

const (
	kindCounter kind = iota
	kindGauge
	kindHistogram
)

func (k kind) String() string {
	switch k {
	case kindCounter:
		return "counter"
	case kindGauge:
		return "gauge"
	default:
		return "histogram"
	}
}

// series is one label-set instance of a family. Exactly one of the
// value fields is set, matching the family kind and whether the series
// is direct or callback-backed.
type series struct {
	labels   []string // flattened k,v pairs, as given at registration
	labelStr string   // pre-rendered {k="v",...}, "" when unlabelled

	c  *Counter
	g  *Gauge
	h  *Histogram
	cf func() int64
	gf func() int64
	hf func() HistogramSnapshot
}

// family groups the series of one metric name.
type family struct {
	name   string
	help   string
	kind   kind
	series []*series
	byKey  map[string]*series
}

// Registry holds metric families and renders them for exposition.
// Registration is idempotent: asking for an existing (name, labels)
// series returns the same instrument, and re-registering a ...Func
// series replaces its callback (so a restarted topology re-binds its
// collectors). Registering the same name with a different kind panics —
// that is a setup bug, caught at wiring time, not in the hot path.
type Registry struct {
	mu       sync.Mutex
	families map[string]*family
	order    []string
}

// NewRegistry returns an empty registry.
func NewRegistry() *Registry {
	return &Registry{families: make(map[string]*family)}
}

// labelKey renders the canonical identity of a label set: pairs sorted
// by key, so registration order of labels does not split series.
func labelKey(pairs []string) string {
	if len(pairs) == 0 {
		return ""
	}
	type kv struct{ k, v string }
	kvs := make([]kv, 0, len(pairs)/2)
	for i := 0; i+1 < len(pairs); i += 2 {
		kvs = append(kvs, kv{pairs[i], pairs[i+1]})
	}
	sort.Slice(kvs, func(i, j int) bool { return kvs[i].k < kvs[j].k })
	var b strings.Builder
	b.WriteByte('{')
	for i, p := range kvs {
		if i > 0 {
			b.WriteByte(',')
		}
		b.WriteString(p.k)
		b.WriteString(`="`)
		b.WriteString(escapeLabel(p.v))
		b.WriteByte('"')
	}
	b.WriteByte('}')
	return b.String()
}

// escapeLabel escapes a label value per the Prometheus text format.
func escapeLabel(v string) string {
	if !strings.ContainsAny(v, "\\\"\n") {
		return v
	}
	r := strings.NewReplacer(`\`, `\\`, `"`, `\"`, "\n", `\n`)
	return r.Replace(v)
}

// getSeries resolves (or creates) the series for name+labels, checking
// kind consistency. labels must be an even number of k,v strings.
func (r *Registry) getSeries(name, help string, k kind, labels []string) *series {
	if len(labels)%2 != 0 {
		panic(fmt.Sprintf("obsv: metric %s registered with odd label list %v", name, labels))
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	f := r.families[name]
	if f == nil {
		f = &family{name: name, help: help, kind: k, byKey: make(map[string]*series)}
		r.families[name] = f
		r.order = append(r.order, name)
	}
	if f.kind != k {
		panic(fmt.Sprintf("obsv: metric %s re-registered as %s, was %s", name, k, f.kind))
	}
	key := labelKey(labels)
	s := f.byKey[key]
	if s == nil {
		s = &series{labels: append([]string(nil), labels...), labelStr: key}
		f.byKey[key] = s
		f.series = append(f.series, s)
	}
	return s
}

// Counter returns the counter for name+labels, creating it on first use.
// labels are flattened key, value pairs.
func (r *Registry) Counter(name, help string, labels ...string) *Counter {
	s := r.getSeries(name, help, kindCounter, labels)
	r.mu.Lock()
	defer r.mu.Unlock()
	if s.c == nil {
		s.c = &Counter{}
	}
	return s.c
}

// Gauge returns the gauge for name+labels, creating it on first use.
func (r *Registry) Gauge(name, help string, labels ...string) *Gauge {
	s := r.getSeries(name, help, kindGauge, labels)
	r.mu.Lock()
	defer r.mu.Unlock()
	if s.g == nil {
		s.g = &Gauge{}
	}
	return s.g
}

// Histogram returns the histogram for name+labels, creating it on first
// use. Observations are int64; families named *_seconds are assumed to
// observe nanoseconds and are exposed in seconds.
func (r *Registry) Histogram(name, help string, labels ...string) *Histogram {
	s := r.getSeries(name, help, kindHistogram, labels)
	r.mu.Lock()
	defer r.mu.Unlock()
	if s.h == nil {
		s.h = NewHistogram()
	}
	return s.h
}

// CounterFunc registers a counter whose value is read from fn at
// exposition time. Re-registering replaces the callback.
func (r *Registry) CounterFunc(name, help string, fn func() int64, labels ...string) {
	s := r.getSeries(name, help, kindCounter, labels)
	r.mu.Lock()
	defer r.mu.Unlock()
	s.cf = fn
}

// GaugeFunc registers a gauge whose value is read from fn at exposition
// time. Re-registering replaces the callback.
func (r *Registry) GaugeFunc(name, help string, fn func() int64, labels ...string) {
	s := r.getSeries(name, help, kindGauge, labels)
	r.mu.Lock()
	defer r.mu.Unlock()
	s.gf = fn
}

// HistogramFunc registers a histogram whose snapshot is produced by fn
// at exposition time — typically a merge of per-task histograms a
// subsystem owns. Re-registering replaces the callback.
func (r *Registry) HistogramFunc(name, help string, fn func() HistogramSnapshot, labels ...string) {
	s := r.getSeries(name, help, kindHistogram, labels)
	r.mu.Lock()
	defer r.mu.Unlock()
	s.hf = fn
}
