package obsv

import (
	"math"
	"math/bits"
	"sync/atomic"
)

// histBuckets is the bucket count of a Histogram: bucket i holds
// observations v with bits.Len64(v) == i, i.e. v == 0 for i == 0 and
// v ∈ [2^(i-1), 2^i) for i ≥ 1. 64-bit values need Len64 values 0..64.
const histBuckets = 65

// Histogram is a lock-free latency histogram with power-of-two buckets.
// Observe costs two uncontended atomic adds plus an atomic max (a load
// and, when the max advances, one CAS) and never allocates, so it can
// sit on per-tuple and per-request hot paths. Snapshots are consistent
// enough for monitoring (buckets are read one by one while writers
// proceed) and merge across instances, which is how per-task histograms
// roll up into per-component percentiles.
//
// Observations are int64 and unit-agnostic; everything in this repo
// observes nanoseconds. Negative observations count as zero.
type Histogram struct {
	buckets [histBuckets]atomic.Int64
	sum     atomic.Int64
	max     atomic.Int64
}

// NewHistogram returns an empty histogram.
func NewHistogram() *Histogram { return &Histogram{} }

// Observe records one value.
func (h *Histogram) Observe(v int64) {
	if v < 0 {
		v = 0
	}
	h.buckets[bits.Len64(uint64(v))].Add(1)
	h.sum.Add(v)
	for {
		m := h.max.Load()
		if v <= m || h.max.CompareAndSwap(m, v) {
			return
		}
	}
}

// Snapshot returns a point-in-time copy of the histogram.
func (h *Histogram) Snapshot() HistogramSnapshot {
	var s HistogramSnapshot
	for i := range h.buckets {
		n := h.buckets[i].Load()
		s.Buckets[i] = n
		s.Count += n
	}
	s.Sum = h.sum.Load()
	s.Max = h.max.Load()
	return s
}

// HistogramSnapshot is a mergeable point-in-time view of a Histogram.
// The zero value is an empty snapshot, ready to Merge into.
type HistogramSnapshot struct {
	// Count is the number of observations.
	Count int64
	// Sum is the total of all observed values.
	Sum int64
	// Max is the largest observed value.
	Max int64
	// Buckets[i] counts observations v with bits.Len64(v) == i.
	Buckets [histBuckets]int64
}

// Merge folds another snapshot into s.
func (s *HistogramSnapshot) Merge(o HistogramSnapshot) {
	s.Count += o.Count
	s.Sum += o.Sum
	if o.Max > s.Max {
		s.Max = o.Max
	}
	for i := range s.Buckets {
		s.Buckets[i] += o.Buckets[i]
	}
}

// Mean returns the average observation, 0 when empty.
func (s *HistogramSnapshot) Mean() int64 {
	if s.Count == 0 {
		return 0
	}
	return s.Sum / s.Count
}

// bucketBounds returns the value range [lo, hi) covered by bucket i.
func bucketBounds(i int) (lo, hi int64) {
	if i == 0 {
		return 0, 1
	}
	lo = int64(1) << (i - 1)
	if i >= 63 {
		hi = math.MaxInt64
	} else {
		hi = int64(1) << i
	}
	return lo, hi
}

// Quantile estimates the q-th quantile (q in [0, 1]) by walking the
// buckets and interpolating linearly inside the target bucket. The
// estimate is bounded by Max, so Quantile(1) is exact.
func (s *HistogramSnapshot) Quantile(q float64) int64 {
	if s.Count == 0 {
		return 0
	}
	if q < 0 {
		q = 0
	}
	if q > 1 {
		q = 1
	}
	rank := int64(math.Ceil(q * float64(s.Count)))
	if rank < 1 {
		rank = 1
	}
	var cum int64
	for i, n := range s.Buckets {
		if n == 0 {
			continue
		}
		if cum+n >= rank {
			lo, hi := bucketBounds(i)
			frac := float64(rank-cum) / float64(n)
			v := lo + int64(frac*float64(hi-lo))
			if s.Max > 0 && v > s.Max {
				v = s.Max
			}
			return v
		}
		cum += n
	}
	return s.Max
}
