package obsv

import (
	"encoding/json"
	"fmt"
	"io"
	"strconv"
	"strings"
)

// PrometheusContentType is the Content-Type of WritePrometheus output
// (Prometheus text exposition format 0.0.4).
const PrometheusContentType = "text/plain; version=0.0.4; charset=utf-8"

// secondsScale converts nanosecond observations of a *_seconds family
// into the base unit Prometheus expects.
const secondsScale = 1e-9

// familyScale returns the multiplier applied to a histogram family's
// observed values at exposition: families named *_seconds observe
// nanoseconds by repo convention and are exposed in seconds.
func familyScale(name string) float64 {
	if strings.HasSuffix(name, "_seconds") {
		return secondsScale
	}
	return 1
}

// seriesValue reads the current value of a counter or gauge series.
func (s *series) value() int64 {
	switch {
	case s.c != nil:
		return s.c.Value()
	case s.g != nil:
		return s.g.Value()
	case s.cf != nil:
		return s.cf()
	case s.gf != nil:
		return s.gf()
	}
	return 0
}

// histSnapshot reads the current snapshot of a histogram series.
func (s *series) histSnapshot() HistogramSnapshot {
	switch {
	case s.h != nil:
		return s.h.Snapshot()
	case s.hf != nil:
		return s.hf()
	}
	return HistogramSnapshot{}
}

// snapshotFamilies copies the family/series structure under the lock so
// exposition can read instrument values without holding it (“Func“
// callbacks may take subsystem locks of their own).
func (r *Registry) snapshotFamilies() []*family {
	r.mu.Lock()
	defer r.mu.Unlock()
	out := make([]*family, 0, len(r.order))
	for _, name := range r.order {
		f := r.families[name]
		cp := &family{name: f.name, help: f.help, kind: f.kind}
		cp.series = append(cp.series, f.series...)
		out = append(out, cp)
	}
	return out
}

// WritePrometheus renders every registered family in the Prometheus text
// exposition format 0.0.4: HELP/TYPE headers, then one line per series
// (counters and gauges) or the cumulative bucket/sum/count triplet
// (histograms).
func (r *Registry) WritePrometheus(w io.Writer) error {
	for _, f := range r.snapshotFamilies() {
		if f.help != "" {
			if _, err := fmt.Fprintf(w, "# HELP %s %s\n", f.name, f.help); err != nil {
				return err
			}
		}
		if _, err := fmt.Fprintf(w, "# TYPE %s %s\n", f.name, f.kind); err != nil {
			return err
		}
		for _, s := range f.series {
			if f.kind == kindHistogram {
				if err := writePromHistogram(w, f.name, s); err != nil {
					return err
				}
				continue
			}
			if _, err := fmt.Fprintf(w, "%s%s %d\n", f.name, s.labelStr, s.value()); err != nil {
				return err
			}
		}
	}
	return nil
}

// promLabels renders a series' labels with one extra pair appended —
// the `le` of a histogram bucket line.
func promLabels(s *series, extraKey, extraVal string) string {
	var b strings.Builder
	b.WriteByte('{')
	inner := strings.TrimSuffix(strings.TrimPrefix(s.labelStr, "{"), "}")
	if inner != "" {
		b.WriteString(inner)
		b.WriteByte(',')
	}
	b.WriteString(extraKey)
	b.WriteString(`="`)
	b.WriteString(extraVal)
	b.WriteString(`"}`)
	return b.String()
}

// writePromHistogram renders one histogram series as cumulative
// `_bucket{le=...}` lines plus `_sum` and `_count`. Only buckets up to
// the highest populated one are listed — power-of-two boundaries up to
// 2^64 would otherwise emit 65 lines per empty series.
func writePromHistogram(w io.Writer, name string, s *series) error {
	snap := s.histSnapshot()
	scale := familyScale(name)
	top := 0
	for i, n := range snap.Buckets {
		if n > 0 {
			top = i
		}
	}
	var cum int64
	for i := 0; i <= top; i++ {
		cum += snap.Buckets[i]
		_, hi := bucketBounds(i)
		le := strconv.FormatFloat(float64(hi)*scale, 'g', -1, 64)
		if _, err := fmt.Fprintf(w, "%s_bucket%s %d\n", name, promLabels(s, "le", le), cum); err != nil {
			return err
		}
	}
	if _, err := fmt.Fprintf(w, "%s_bucket%s %d\n", name, promLabels(s, "le", "+Inf"), snap.Count); err != nil {
		return err
	}
	if _, err := fmt.Fprintf(w, "%s_sum%s %g\n", name, s.labelStr, float64(snap.Sum)*scale); err != nil {
		return err
	}
	_, err := fmt.Fprintf(w, "%s_count%s %d\n", name, s.labelStr, snap.Count)
	return err
}

// jsonSeries is the /debug/vars-style JSON rendering of one series.
type jsonSeries struct {
	Labels map[string]string `json:"labels,omitempty"`
	Value  *int64            `json:"value,omitempty"`
	Hist   *jsonHistogram    `json:"histogram,omitempty"`
}

// jsonHistogram summarizes a histogram for the JSON dump; quantiles are
// reported in the family's exposition unit.
type jsonHistogram struct {
	Count int64   `json:"count"`
	Sum   float64 `json:"sum"`
	Mean  float64 `json:"mean"`
	P50   float64 `json:"p50"`
	P90   float64 `json:"p90"`
	P99   float64 `json:"p99"`
	Max   float64 `json:"max"`
}

// WriteJSON renders every registered family as a JSON object keyed by
// family name — the `GET /debug/vars` style dump. Counters and gauges
// report their value; histograms report count/sum/mean/p50/p90/p99/max
// in the family's exposition unit (seconds for *_seconds families).
func (r *Registry) WriteJSON(w io.Writer) error {
	out := make(map[string][]jsonSeries)
	for _, f := range r.snapshotFamilies() {
		scale := familyScale(f.name)
		rows := make([]jsonSeries, 0, len(f.series))
		for _, s := range f.series {
			row := jsonSeries{}
			if len(s.labels) > 0 {
				row.Labels = make(map[string]string, len(s.labels)/2)
				for i := 0; i+1 < len(s.labels); i += 2 {
					row.Labels[s.labels[i]] = s.labels[i+1]
				}
			}
			if f.kind == kindHistogram {
				snap := s.histSnapshot()
				row.Hist = &jsonHistogram{
					Count: snap.Count,
					Sum:   float64(snap.Sum) * scale,
					Mean:  float64(snap.Mean()) * scale,
					P50:   float64(snap.Quantile(0.50)) * scale,
					P90:   float64(snap.Quantile(0.90)) * scale,
					P99:   float64(snap.Quantile(0.99)) * scale,
					Max:   float64(snap.Max) * scale,
				}
			} else {
				v := s.value()
				row.Value = &v
			}
			rows = append(rows, row)
		}
		out[f.name] = rows
	}
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(out)
}
