package obsv

import "testing"

// BenchmarkHistogramObserve must report 0 allocs/op — the histogram
// sits on the per-tuple execute path. scripts/check.sh asserts this.
func BenchmarkHistogramObserve(b *testing.B) {
	h := NewHistogram()
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		h.Observe(int64(i))
	}
}

// BenchmarkCounterAdd must report 0 allocs/op.
func BenchmarkCounterAdd(b *testing.B) {
	var c Counter
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		c.Add(1)
	}
}

func BenchmarkHistogramObserveParallel(b *testing.B) {
	h := NewHistogram()
	b.ReportAllocs()
	b.RunParallel(func(pb *testing.PB) {
		v := int64(0)
		for pb.Next() {
			h.Observe(v)
			v++
		}
	})
}

func BenchmarkTracerSampleMiss(b *testing.B) {
	tr := NewTracer(1024, 64)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if t := tr.Sample(); t != nil {
			t.AddSpan("bench", 0, 1, 2)
		}
	}
}

func BenchmarkWritePrometheus(b *testing.B) {
	r := NewRegistry()
	for _, comp := range []string{"spout", "pretreatment", "userHistory", "itemCount", "pairCount", "similarity", "storage"} {
		h := r.Histogram("stream_execute_seconds", "", "component", comp)
		for i := int64(0); i < 1000; i++ {
			h.Observe(i * 100)
		}
		r.Counter("stream_executed_total", "", "component", comp).Add(1000)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		r.WritePrometheus(discard{})
	}
}

type discard struct{}

func (discard) Write(p []byte) (int, error) { return len(p), nil }
