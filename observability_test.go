package tencentrec

import (
	"bytes"
	"strings"
	"testing"
	"time"
)

// TestSystemTraceWaterfall drives a sampled action through the full
// pipeline and asserts its trace is a span chain across at least three
// topology stages with monotonic timestamps — the latency waterfall the
// monitor prints.
func TestSystemTraceWaterfall(t *testing.T) {
	sys, err := Open(SystemConfig{
		DataDir:    t.TempDir(),
		Params:     Params{FlushInterval: 20 * time.Millisecond, WindowSessions: -1},
		TraceEvery: 1, // sample everything so the assertion is deterministic
	})
	if err != nil {
		t.Fatal(err)
	}
	defer sys.Close()

	for u, user := range []string{"u1", "u2", "u3"} {
		ts := t0.Add(time.Duration(u) * time.Minute)
		sys.Publish(RawAction{User: user, Item: "show-a", Action: "play", TS: ts.UnixNano()})
		sys.Publish(RawAction{User: user, Item: "show-b", Action: "play", TS: ts.Add(time.Second).UnixNano()})
	}
	if err := sys.Drain(10 * time.Second); err != nil {
		t.Fatal(err)
	}

	traces := sys.Traces()
	if len(traces) == 0 {
		t.Fatal("no traces sampled with TraceEvery=1")
	}
	var best int
	for _, tr := range traces {
		stages := map[string]bool{}
		for _, s := range tr.Spans {
			stages[s.Stage] = true
			if s.Enqueue < tr.Start {
				t.Errorf("trace %d stage %s: enqueue %d before trace start %d", tr.ID, s.Stage, s.Enqueue, tr.Start)
			}
			if s.Start < s.Enqueue || s.End < s.Start {
				t.Errorf("trace %d stage %s: non-monotonic span enq=%d start=%d end=%d",
					tr.ID, s.Stage, s.Enqueue, s.Start, s.End)
			}
		}
		// Spans are exported sorted by execution start.
		for i := 1; i < len(tr.Spans); i++ {
			if tr.Spans[i].Start < tr.Spans[i-1].Start {
				t.Errorf("trace %d spans not ordered by start", tr.ID)
			}
		}
		if len(stages) > best {
			best = len(stages)
		}
	}
	if best < 3 {
		var buf bytes.Buffer
		sys.WriteTraceWaterfall(&buf)
		t.Fatalf("no trace spans >= 3 stages (best %d):\n%s", best, buf.String())
	}

	// The waterfall rendering names the stages the spans crossed.
	var buf bytes.Buffer
	sys.WriteTraceWaterfall(&buf)
	for _, stage := range []string{"pretreatment", "userHistory"} {
		if !strings.Contains(buf.String(), stage) {
			t.Errorf("waterfall missing stage %q:\n%s", stage, buf.String())
		}
	}
}

// TestPrometheusFamilyCoverage asserts the one registry covers every
// instrumented layer: stream engine, TDStore client, TDAccess broker and
// the serving front end.
func TestPrometheusFamilyCoverage(t *testing.T) {
	sys, err := Open(SystemConfig{
		DataDir: t.TempDir(),
		Params:  Params{FlushInterval: 20 * time.Millisecond, WindowSessions: -1},
	})
	if err != nil {
		t.Fatal(err)
	}
	defer sys.Close()
	sys.Handler() // serving instruments register when the front end is built

	sys.Publish(RawAction{User: "u1", Item: "a", Action: "play", TS: t0.UnixNano()})
	sys.Publish(RawAction{User: "u1", Item: "b", Action: "play", TS: t0.Add(time.Second).UnixNano()})
	if err := sys.Drain(10 * time.Second); err != nil {
		t.Fatal(err)
	}

	var buf bytes.Buffer
	if err := sys.Registry().WritePrometheus(&buf); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	for _, family := range []string{
		// stream engine
		"# TYPE stream_emitted_total counter",
		"# TYPE stream_execute_seconds histogram",
		"# TYPE stream_queue_depth_batches gauge",
		`stream_execute_seconds_count{component="userHistory"}`,
		// TDStore client
		"# TYPE tdstore_op_seconds histogram",
		"tdstore_retries_total",
		// TDAccess broker
		"# TYPE tdaccess_published_total counter",
		"# TYPE tdaccess_consume_lag_seconds histogram",
		// serving front end
		"# TYPE http_request_seconds histogram",
	} {
		if !strings.Contains(out, family) {
			t.Errorf("exposition missing %q", family)
		}
	}

	// The spout consumed both actions, and the stream counters saw them.
	if !strings.Contains(out, `stream_emitted_total{component="spout"} 2`) {
		t.Errorf("spout emitted counter not reflected:\n%s", out)
	}
}
